module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

let any_source = Msg.any_source
let any_tag = Msg.any_tag

let check_tag ~ctx tag =
  match (ctx : Msg.ctx) with
  | User -> if tag < 0 then Errors.usage "user message tags must be non-negative (got %d)" tag
  | Internal -> ()

(* Receive-side patterns may use the wildcard. *)
let check_recv_tag ~ctx tag = if tag <> any_tag then check_tag ~ctx tag

let window_bounds ~what buf pos count =
  let len = Array.length buf in
  let count = match count with Some c -> c | None -> len - pos in
  if pos < 0 || count < 0 || pos + count > len then
    Errors.usage "%s: window [%d, %d) exceeds buffer of length %d" what pos (pos + count) len;
  count

let record w name = Profiling.record_call w.World.prof name

let my_world comm = Comm.world_rank_of comm (Comm.rank comm)

let track comm ~op req =
  let w = Comm.world comm in
  Checker.track_request w.World.check ~rank:(my_world comm) ~comm:(Comm.id comm) ~op
    ~at:(World.now w) req

let record_mismatch comm ~op ~src ~tag e =
  Checker.record_match_error (Comm.world comm).World.check ~rank:(my_world comm)
    ~comm:(Comm.id comm) ~op ~src ~tag e

(* Record a call span around [f] when this is a user-level call on a traced
   run.  [Fun.protect] spans the fiber's suspensions, so the span covers the
   full blocking time of the call; exceptional exits are closed too. *)
let traced ~ctx comm ~op f =
  let w = Comm.world comm in
  if ctx <> Msg.User || not (Trace.Recorder.active w.World.trace) then f ()
  else begin
    let rank = my_world comm in
    let t0 = World.now w in
    Fun.protect
      ~finally:(fun () ->
        Trace.Recorder.add_span w.World.trace
          {
            Trace.Event.sp_rank = rank;
            sp_op = op;
            sp_cat = "p2p";
            sp_comm = Comm.id comm;
            sp_seq = -1;
            sp_t0 = t0;
            sp_t1 = World.now w;
          })
      f
  end

(* Stamp the receive-side timestamps on a matched message's trace record. *)
let stamp_env_match (env : Msg.envelope) ~posted ~time =
  match env.Msg.trace with
  | Some m -> Trace.Event.stamp_match m ~posted ~time
  | None -> ()

(* Per-call software initiation cost (argument validation, matching setup).
   Only user-level ephemeral calls pay it; persistent operations charge it
   once at init.  Zero by default, and the [> 0.0] guard keeps the default
   schedule free of extra events. *)
let charge_setup ~ctx comm =
  if ctx = Msg.User then begin
    let w = Comm.world comm in
    let so = (Netmodel.params w.World.net).Netmodel.setup_overhead in
    if so > 0.0 then Engine.delay w.World.engine so
  end

(* Book a validated message into the network and schedule its arrival.
   No validation happens here — this is the path persistent [start]s reuse
   after validating once at init.  Returns the injection-complete time
   (when the sender's buffer is reusable). *)
let inject_raw comm dt ~count ~dst ~tag ~ctx ~on_matched ~payload =
  let w = Comm.world comm in
  let src_world = Comm.world_rank_of comm (Comm.rank comm) in
  let dst_world = Comm.world_rank_of comm dst in
  let bytes = Datatype.bytes dt count in
  Profiling.record_message w.World.prof ~bytes;
  let now = World.now w in
  let injected, arrival =
    Netmodel.transfer w.World.net ~now ~src:src_world ~dst:dst_world ~bytes
      ~pack_factor:(Datatype.pack_factor dt)
  in
  (* Chaos-layer latency jitter: the adjusted arrival is used for both the
     trace record and the delivery event, so traced explored runs stay
     self-consistent.  The hook preserves per-(src,dst) FIFO order. *)
  let arrival =
    match World.arrival_adjust w with
    | None -> arrival
    | Some adj -> Float.max arrival (adj ~src:src_world ~dst:dst_world ~arrival)
  in
  (* Record every injected message — internal collective traffic included,
     so the critical path can thread through collectives.  The arrival time
     is known now (the network model is deterministic), so no extra event is
     scheduled: tracing must not perturb the event count. *)
  let trace_msg =
    if Trace.Recorder.active w.World.trace then
      Some
        (Trace.Recorder.add_message w.World.trace ~src:src_world ~dst:dst_world ~tag ~bytes
           ~user:(ctx = Msg.User) ~sent:now ~arrived:arrival)
    else None
  in
  if World.is_alive w dst_world then begin
    let env =
      Msg.make_envelope w.World.env_pool ~src:(Comm.rank comm) ~src_world ~tag
        ~comm_id:(Comm.id comm) ~ctx ~count ~bytes ~sent_at:now ~payload:(payload ())
        ~on_matched ~trace:trace_msg
    in
    Engine.schedule w.World.engine
      ~delay:(arrival -. now)
      (fun () -> Msg.arrive w.World.env_pool w.World.mailboxes.(dst_world) env)
  end;
  injected

(* Validate, charge the per-call setup cost, and inject — the ephemeral
   send path. *)
let inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched =
  Comm.check_active comm;
  check_tag ~ctx tag;
  Datatype.mark_committed dt;
  let count = window_bounds ~what:"send" buf pos count in
  charge_setup ~ctx comm;
  inject_raw comm dt ~count ~dst ~tag ~ctx ~on_matched
    ~payload:(fun () -> Msg.Packed (dt, Array.sub buf pos count))

let send ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Send";
  traced ~ctx comm ~op:"MPI_Send" @@ fun () ->
  let injected = inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched:None in
  Engine.delay w.World.engine (injected -. World.now w)

let isend ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Isend";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Isend" req;
  let count' = window_bounds ~what:"isend" buf pos count in
  traced ~ctx comm ~op:"MPI_Isend" @@ fun () ->
  let injected = inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched:None in
  Engine.schedule w.World.engine
    ~delay:(injected -. World.now w)
    (fun () -> Request.complete req { source = dst; tag; count = count' });
  req

let issend ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Issend";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Issend" req;
  let count' = window_bounds ~what:"issend" buf pos count in
  let latency = (Netmodel.params w.World.net).latency in
  let on_matched =
    Some
      (fun () ->
        (* The acknowledgment travels back to the sender. *)
        Engine.schedule w.World.engine ~delay:latency (fun () ->
            Request.complete req { source = dst; tag; count = count' }))
  in
  traced ~ctx comm ~op:"MPI_Issend" @@ fun () ->
  ignore (inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched);
  req

(* Copy a matched envelope into the receive window, enforcing MPI's type
   and size rules.  A sparse (non-materialized large-count) payload passes
   the same type and capacity checks but has no elements to copy. *)
let copy_payload (type a) (env : Msg.envelope) (rdt : a Datatype.t) (buf : a array) pos capacity :
    (Request.status, exn) result =
  match env.payload with
  | Msg.Packed (sdt, data) -> (
      match Datatype.equal_witness sdt rdt with
      | None ->
          Error (Errors.Type_mismatch { sent = Datatype.name sdt; expected = Datatype.name rdt })
      | Some Type.Equal ->
          let n = Array.length data in
          if n > capacity then Error (Errors.Truncated { sent = n; capacity })
          else begin
            Array.blit data 0 buf pos n;
            Ok { Request.source = env.src; tag = env.tag; count = n }
          end)
  | Msg.Sparse (sdt, n) -> (
      match Datatype.equal_witness sdt rdt with
      | None ->
          Error (Errors.Type_mismatch { sent = Datatype.name sdt; expected = Datatype.name rdt })
      | Some Type.Equal ->
          if n > capacity then Error (Errors.Truncated { sent = n; capacity })
          else Ok { Request.source = env.src; tag = env.tag; count = n })

(* Type- and capacity-check a matched envelope without a receive buffer —
   the large-count receive path, where [capacity] may exceed any
   allocatable array. *)
let verify_payload (type a) (env : Msg.envelope) (rdt : a Datatype.t) capacity :
    (Request.status, exn) result =
  let check : type b. b Datatype.t -> int -> (Request.status, exn) result =
   fun sdt n ->
    match Datatype.equal_witness sdt rdt with
    | None ->
        Error (Errors.Type_mismatch { sent = Datatype.name sdt; expected = Datatype.name rdt })
    | Some Type.Equal ->
        if n > capacity then Error (Errors.Truncated { sent = n; capacity })
        else Ok { Request.source = env.src; tag = env.tag; count = n }
  in
  match env.payload with
  | Msg.Packed (sdt, data) -> check sdt (Array.length data)
  | Msg.Sparse (sdt, n) -> check sdt n

(* Detect whether a receive from [src] can never be satisfied because the
   peer (or, for wildcards, some group member) has failed. *)
let dead_peer comm ~src =
  let w = Comm.world comm in
  if src = any_source then World.any_dead w (Comm.group comm)
  else begin
    let sw = Comm.world_rank_of comm src in
    if World.is_alive w sw then None else Some sw
  end

let make_pending comm ~src ~tag ~ctx ~deliver ~on_fail : Msg.pending_recv =
  {
    Msg.want_src = src;
    want_tag = tag;
    want_comm = Comm.id comm;
    want_ctx = ctx;
    src_world = (if src = any_source then -1 else Comm.world_rank_of comm src);
    comm_group = Comm.group comm;
    deliver;
    on_fail;
    owner_world = Comm.world_rank_of comm (Comm.rank comm);
    live = true;
  }

let recv ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  let capacity = window_bounds ~what:"recv" buf pos count in
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Recv";
  traced ~ctx comm ~op:"MPI_Recv" @@ fun () ->
  charge_setup ~ctx comm;
  let posted = World.now w in
  let mb = w.World.mailboxes.(my_world comm) in
  match
    Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
  with
  | Some env -> begin
      stamp_env_match env ~posted ~time:(World.now w);
      let copied = copy_payload env dt buf pos capacity in
      Msg.release w.World.env_pool env;
      match copied with
      | Ok st -> st
      | Error e ->
          record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
          raise e
    end
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.delay w.World.engine w.World.detection_delay;
          raise (Errors.Process_failed { world_rank = wr })
      | None ->
          Engine.suspend w.World.engine (fun resumer ->
              let deliver env =
                stamp_env_match env ~posted ~time:(World.now w);
                match copy_payload env dt buf pos capacity with
                | Ok st -> Engine.resume resumer st
                | Error e ->
                    record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
                    Engine.fail resumer e
              in
              let on_fail e = Engine.fail resumer e in
              Msg.post mb (make_pending comm ~src ~tag ~ctx ~deliver ~on_fail))
    end

let irecv ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  let capacity = window_bounds ~what:"irecv" buf pos count in
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Irecv";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Irecv" req;
  let mb = w.World.mailboxes.(my_world comm) in
  traced ~ctx comm ~op:"MPI_Irecv" @@ fun () ->
  charge_setup ~ctx comm;
  let posted = World.now w in
  (match
     Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
   with
  | Some env -> begin
      stamp_env_match env ~posted ~time:(World.now w);
      let copied = copy_payload env dt buf pos capacity in
      Msg.release w.World.env_pool env;
      match copied with
      | Ok st -> Request.complete req st
      | Error e ->
          record_mismatch comm ~op:"MPI_Irecv" ~src ~tag e;
          Request.abort req e
    end
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.schedule w.World.engine ~delay:w.World.detection_delay (fun () ->
              Request.abort req (Errors.Process_failed { world_rank = wr }))
      | None ->
          let deliver env =
            stamp_env_match env ~posted ~time:(World.now w);
            match copy_payload env dt buf pos capacity with
            | Ok st -> Request.complete req st
            | Error e ->
                record_mismatch comm ~op:"MPI_Irecv" ~src ~tag e;
                Request.abort req e
          in
          let on_fail e = Request.abort req e in
          Msg.post mb (make_pending comm ~src ~tag ~ctx ~deliver ~on_fail)
    end);
  req

let probe ?(ctx = Msg.User) comm ~src ~tag =
  Comm.check_active comm;
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Probe";
  traced ~ctx comm ~op:"MPI_Probe" @@ fun () ->
  let mb = w.World.mailboxes.(Comm.world_rank_of comm (Comm.rank comm)) in
  match Msg.peek_unexpected mb ~src ~tag ~comm:(Comm.id comm) ~ctx with
  | Some env -> { Request.source = env.Msg.src; tag = env.Msg.tag; count = env.Msg.count }
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.delay w.World.engine w.World.detection_delay;
          raise (Errors.Process_failed { world_rank = wr })
      | None ->
          Engine.suspend w.World.engine (fun resumer ->
              let notify (env : Msg.envelope) =
                Engine.resume resumer
                  { Request.source = env.src; tag = env.tag; count = env.count }
              in
              Msg.post_probe mb
                {
                  Msg.p_src = src;
                  p_tag = tag;
                  p_comm = Comm.id comm;
                  p_ctx = ctx;
                  p_src_world = (if src = any_source then -1 else Comm.world_rank_of comm src);
                  p_group = Comm.group comm;
                  notify;
                  p_on_fail = (fun e -> Engine.fail resumer e);
                  p_owner_world = my_world comm;
                  p_live = true;
                })
    end

let iprobe ?(ctx = Msg.User) comm ~src ~tag =
  Comm.check_active comm;
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Iprobe";
  let mb = w.World.mailboxes.(Comm.world_rank_of comm (Comm.rank comm)) in
  Msg.peek_unexpected mb ~src ~tag ~comm:(Comm.id comm) ~ctx
  |> Option.map (fun (env : Msg.envelope) ->
         { Request.source = env.src; tag = env.tag; count = env.count })

let sendrecv ?(ctx = Msg.User) comm dt ~send:sbuf ?(send_pos = 0) ?send_count ~dst ~stag ~recv:rbuf
    ?(recv_pos = 0) ?recv_count ~src ~rtag () =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Sendrecv";
  traced ~ctx comm ~op:"MPI_Sendrecv" @@ fun () ->
  let sreq = isend ~ctx ~pos:send_pos ?count:send_count comm dt sbuf ~dst ~tag:stag in
  let status = recv ~ctx ~pos:recv_pos ?count:recv_count comm dt rbuf ~src ~tag:rtag in
  ignore (Request.wait sreq);
  status

let sendrecv_replace ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~stag ~src ~rtag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Sendrecv_replace";
  traced ~ctx comm ~op:"MPI_Sendrecv_replace" @@ fun () ->
  (* the outgoing data is snapshotted at injection time (the runtime copies
     payloads eagerly), so receiving into the same window is safe *)
  let sreq = isend ~ctx ~pos ?count comm dt buf ~dst ~tag:stag in
  let status = recv ~ctx ~pos ?count comm dt buf ~src ~tag:rtag in
  ignore (Request.wait sreq);
  status

(* ------------------------------------------------------------------ *)
(* Large-count (sparse-payload) transfers.                             *)
(* ------------------------------------------------------------------ *)

let send_sparse ?(ctx = Msg.User) comm dt ~count ~dst ~tag =
  Comm.check_active comm;
  check_tag ~ctx tag;
  Datatype.mark_committed dt;
  ignore (Datatype.bytes dt count) (* count >= 0 and byte size representable *);
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Send";
  traced ~ctx comm ~op:"MPI_Send" @@ fun () ->
  charge_setup ~ctx comm;
  let injected =
    inject_raw comm dt ~count ~dst ~tag ~ctx ~on_matched:None
      ~payload:(fun () -> Msg.Sparse (dt, count))
  in
  Engine.delay w.World.engine (injected -. World.now w)

let recv_sparse ?(ctx = Msg.User) comm dt ~capacity ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  ignore (Datatype.bytes dt capacity);
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Recv";
  traced ~ctx comm ~op:"MPI_Recv" @@ fun () ->
  charge_setup ~ctx comm;
  let posted = World.now w in
  let mb = w.World.mailboxes.(my_world comm) in
  match
    Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
  with
  | Some env -> begin
      stamp_env_match env ~posted ~time:(World.now w);
      let checked = verify_payload env dt capacity in
      Msg.release w.World.env_pool env;
      match checked with
      | Ok st -> st
      | Error e ->
          record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
          raise e
    end
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.delay w.World.engine w.World.detection_delay;
          raise (Errors.Process_failed { world_rank = wr })
      | None ->
          Engine.suspend w.World.engine (fun resumer ->
              let deliver env =
                stamp_env_match env ~posted ~time:(World.now w);
                match verify_payload env dt capacity with
                | Ok st -> Engine.resume resumer st
                | Error e ->
                    record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
                    Engine.fail resumer e
              in
              let on_fail e = Engine.fail resumer e in
              Msg.post mb (make_pending comm ~src ~tag ~ctx ~deliver ~on_fail))
    end

(* ------------------------------------------------------------------ *)
(* Persistent operations (MPI-4 §3.9).                                 *)
(*                                                                     *)
(* All validation — communicator, tag, window bounds, datatype commit, *)
(* peer-rank range — plus the per-call setup cost and checker          *)
(* registration happen once here at init.  [start] reuses the          *)
(* validated fast path ([inject_raw] / the posted-receive machinery    *)
(* with the world's pooled envelopes) and charges nothing.             *)
(* ------------------------------------------------------------------ *)

let track_persist comm ~op h =
  let w = Comm.world comm in
  Checker.track_persistent w.World.check ~rank:(my_world comm) ~comm:(Comm.id comm) ~op
    ~at:(World.now w)
    ~freed:(fun () -> Persist.is_freed h)
    ~starts:(fun () -> Persist.starts h)

let send_init_gen ~sync ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  Comm.check_active comm;
  check_tag ~ctx tag;
  Datatype.mark_committed dt;
  let op = if sync then "MPI_Ssend_init" else "MPI_Send_init" in
  let count = window_bounds ~what:op buf pos count in
  let w = Comm.world comm in
  ignore (Comm.world_rank_of comm dst);
  if ctx = Msg.User then record w op;
  traced ~ctx comm ~op @@ fun () ->
  charge_setup ~ctx comm;
  let latency = (Netmodel.params w.World.net).Netmodel.latency in
  let start h =
    Comm.check_active comm;
    traced ~ctx comm ~op:"MPI_Start" @@ fun () ->
    let req = Persist.request h in
    let on_matched =
      if sync then
        Some
          (fun () ->
            (* synchronous mode: complete when the matching ack returns *)
            Engine.schedule w.World.engine ~delay:latency (fun () ->
                Request.complete req { source = dst; tag; count }))
      else None
    in
    let injected =
      inject_raw comm dt ~count ~dst ~tag ~ctx ~on_matched
        ~payload:(fun () -> Msg.Packed (dt, Array.sub buf pos count))
    in
    if not sync then
      Engine.schedule w.World.engine
        ~delay:(injected -. World.now w)
        (fun () -> Request.complete req { source = dst; tag; count })
  in
  let h =
    Persist.make w.World.engine ~op
      ~around_wait:(fun _ f -> traced ~ctx comm ~op:"MPI_Wait" f)
      start
  in
  if ctx = Msg.User then track_persist comm ~op h;
  h

let send_init ?ctx ?pos ?count comm dt buf ~dst ~tag =
  send_init_gen ~sync:false ?ctx ?pos ?count comm dt buf ~dst ~tag

let ssend_init ?ctx ?pos ?count comm dt buf ~dst ~tag =
  send_init_gen ~sync:true ?ctx ?pos ?count comm dt buf ~dst ~tag

let recv_init ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  let op = "MPI_Recv_init" in
  let capacity = window_bounds ~what:op buf pos count in
  let w = Comm.world comm in
  if src <> any_source then ignore (Comm.world_rank_of comm src);
  if ctx = Msg.User then record w op;
  traced ~ctx comm ~op @@ fun () ->
  charge_setup ~ctx comm;
  let mb = w.World.mailboxes.(my_world comm) in
  (* the live posted receive of the active round, so [cancel] can retire a
     standing channel that will never be matched again *)
  let current = ref None in
  let start h =
    Comm.check_active comm;
    traced ~ctx comm ~op:"MPI_Start" @@ fun () ->
    let req = Persist.request h in
    current := None;
    let posted = World.now w in
    match
      Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
    with
    | Some env -> begin
        stamp_env_match env ~posted ~time:(World.now w);
        let copied = copy_payload env dt buf pos capacity in
        Msg.release w.World.env_pool env;
        match copied with
        | Ok st -> Request.complete req st
        | Error e ->
            record_mismatch comm ~op ~src ~tag e;
            Request.abort req e
      end
    | None -> begin
        match dead_peer comm ~src with
        | Some wr ->
            (* round guard: if the handle was restarted (or cancelled and
               restarted) before the detection delay elapses, this callback
               belongs to a dead round and must not touch the request *)
            let round = Persist.starts h in
            Engine.schedule w.World.engine ~delay:w.World.detection_delay (fun () ->
                if Persist.starts h = round && Persist.is_active h then
                  Request.abort req (Errors.Process_failed { world_rank = wr }))
        | None ->
            let deliver env =
              current := None;
              stamp_env_match env ~posted ~time:(World.now w);
              match copy_payload env dt buf pos capacity with
              | Ok st -> Request.complete req st
              | Error e ->
                  record_mismatch comm ~op ~src ~tag e;
                  Request.abort req e
            in
            let on_fail e =
              current := None;
              Request.abort req e
            in
            let pr = make_pending comm ~src ~tag ~ctx ~deliver ~on_fail in
            current := Some pr;
            Msg.post mb pr
      end
  in
  let cancel h =
    (match !current with
    | Some (pr : Msg.pending_recv) -> pr.Msg.live <- false
    | None -> ());
    current := None;
    (* park the round's request failed so a later [start] can rearm it;
       the handle is inactive after cancel, so nothing observes [Exit] *)
    Request.abort (Persist.request h) Exit
  in
  let h =
    Persist.make w.World.engine ~op ~cancel
      ~around_wait:(fun _ f -> traced ~ctx comm ~op:"MPI_Wait" f)
      start
  in
  if ctx = Msg.User then track_persist comm ~op h;
  h

(* ------------------------------------------------------------------ *)
(* Partitioned communication (MPI-4 §4).                               *)
(*                                                                     *)
(* Each partition travels as one internal-context message; the tag     *)
(* packs (user tag, partition index) below the collective tag space so *)
(* partition traffic can never cross-match user or collective          *)
(* messages.  Partitions progress independently on the engine's event  *)
(* queue; the round's request completes when the last one does.        *)
(* ------------------------------------------------------------------ *)

let max_partitions = 1024
let ptag ~tag i = -(1 lsl 21) - (tag lsl 10) - i

let check_partitioned ~op ~partitions ~count buf =
  if partitions <= 0 || partitions > max_partitions then
    Errors.usage "%s: partitions %d out of range [1, %d]" op partitions max_partitions;
  if count < 0 then Errors.usage "%s: negative per-partition count %d" op count;
  if partitions * count > Array.length buf then
    Errors.usage "%s: %d partitions of %d elements exceed buffer of length %d" op partitions
      count (Array.length buf)

let psend_init ?(ctx = Msg.User) comm dt buf ~partitions ~count ~dst ~tag =
  Comm.check_active comm;
  check_tag ~ctx tag;
  Datatype.mark_committed dt;
  let op = "MPI_Psend_init" in
  check_partitioned ~op ~partitions ~count buf;
  let w = Comm.world comm in
  ignore (Comm.world_rank_of comm dst);
  if ctx = Msg.User then record w op;
  traced ~ctx comm ~op @@ fun () ->
  charge_setup ~ctx comm;
  let readied = Array.make partitions false in
  let remaining = ref partitions in
  let start _h =
    Comm.check_active comm;
    traced ~ctx comm ~op:"MPI_Start" @@ fun () ->
    Array.fill readied 0 partitions false;
    remaining := partitions
  in
  let pready h i =
    Comm.check_active comm;
    if readied.(i) then Errors.usage "%s: partition %d readied twice" op i;
    traced ~ctx comm ~op:"MPI_Pready" @@ fun () ->
    readied.(i) <- true;
    let req = Persist.request h in
    let injected =
      inject_raw comm dt ~count ~dst ~tag:(ptag ~tag i) ~ctx:Msg.Internal ~on_matched:None
        ~payload:(fun () -> Msg.Packed (dt, Array.sub buf (i * count) count))
    in
    decr remaining;
    if !remaining = 0 then
      (* egress injections serialize, so the last pready's injection time
         bounds them all *)
      Engine.schedule w.World.engine
        ~delay:(injected -. World.now w)
        (fun () -> Request.complete req { source = dst; tag; count = partitions * count })
  in
  let h =
    Persist.make w.World.engine ~op ~partitions ~pready
      ~around_wait:(fun _ f -> traced ~ctx comm ~op:"MPI_Wait" f)
      start
  in
  if ctx = Msg.User then track_persist comm ~op h;
  h

let precv_init ?(ctx = Msg.User) comm dt buf ~partitions ~count ~src ~tag =
  Comm.check_active comm;
  check_tag ~ctx tag;
  if src = any_source then Errors.usage "MPI_Precv_init: wildcard source is not allowed";
  Datatype.mark_committed dt;
  let op = "MPI_Precv_init" in
  check_partitioned ~op ~partitions ~count buf;
  let w = Comm.world comm in
  ignore (Comm.world_rank_of comm src);
  if ctx = Msg.User then record w op;
  traced ~ctx comm ~op @@ fun () ->
  charge_setup ~ctx comm;
  let mb = w.World.mailboxes.(my_world comm) in
  let arrived = Array.make partitions false in
  let pendings : Msg.pending_recv option array = Array.make partitions None in
  let start h =
    Comm.check_active comm;
    traced ~ctx comm ~op:"MPI_Start" @@ fun () ->
    let req = Persist.request h in
    Array.fill arrived 0 partitions false;
    Array.fill pendings 0 partitions None;
    let posted = World.now w in
    let remaining = ref partitions in
    let finish_one i =
      arrived.(i) <- true;
      pendings.(i) <- None;
      decr remaining;
      if !remaining = 0 && not (Request.is_failed req) then
        Request.complete req { source = src; tag; count = partitions * count }
    in
    match dead_peer comm ~src with
    | Some wr ->
        let round = Persist.starts h in
        Engine.schedule w.World.engine ~delay:w.World.detection_delay (fun () ->
            if Persist.starts h = round && Persist.is_active h then
              Request.abort req (Errors.Process_failed { world_rank = wr }))
    | None ->
        for i = 0 to partitions - 1 do
          let tag_i = ptag ~tag i in
          match Msg.take_unexpected mb ~src ~tag:tag_i ~comm:(Comm.id comm) ~ctx:Msg.Internal with
          | Some env -> begin
              stamp_env_match env ~posted ~time:(World.now w);
              let copied = copy_payload env dt buf (i * count) count in
              Msg.release w.World.env_pool env;
              match copied with
              | Ok _ -> finish_one i
              | Error e ->
                  record_mismatch comm ~op ~src ~tag e;
                  Request.abort req e
            end
          | None ->
              let deliver env =
                stamp_env_match env ~posted ~time:(World.now w);
                match copy_payload env dt buf (i * count) count with
                | Ok _ -> finish_one i
                | Error e ->
                    record_mismatch comm ~op ~src ~tag e;
                    Request.abort req e
              in
              let on_fail e =
                pendings.(i) <- None;
                Request.abort req e
              in
              let pr = make_pending comm ~src ~tag:tag_i ~ctx:Msg.Internal ~deliver ~on_fail in
              pendings.(i) <- Some pr;
              Msg.post mb pr
        done
  in
  let parrived _h i = arrived.(i) in
  let cancel h =
    Array.iteri
      (fun i pr ->
        (match pr with Some (pr : Msg.pending_recv) -> pr.Msg.live <- false | None -> ());
        pendings.(i) <- None)
      pendings;
    Request.abort (Persist.request h) Exit
  in
  let h =
    Persist.make w.World.engine ~op ~partitions ~parrived ~cancel
      ~around_wait:(fun _ f -> traced ~ctx comm ~op:"MPI_Wait" f)
      start
  in
  if ctx = Msg.User then track_persist comm ~op h;
  h
