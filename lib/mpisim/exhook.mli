(** Exploration hooks: the narrow waist between [Mpi.run] and the
    schedule-exploration subsystem ([lib/explore]).

    mpisim never depends on explore.  Explore registers a {!factory} (for
    env-driven activation à la [MPISIM_EXPLORE]) or passes a hook record
    explicitly through [Mpi.run ?hooks]; with neither, runs keep the
    incumbent deterministic schedule untouched. *)

type t = {
  choose : kind:Simnet.Engine.decision_kind -> ids:int array -> int;
      (** decision procedure for every nondeterminism point: same-time
          ready sets, wildcard-receive matching, wait-any completion
          order, chaos draws.  Receives candidate identifiers; returns the
          index of its pick (clamped by the engine). *)
  arrival_adjust : (src:int -> dst:int -> arrival:float -> float) option;
      (** chaos-layer latency jitter applied to each message's modelled
          arrival time.  The p2p layer preserves per-(src,dst) FIFO order
          by clamping, so any adjustment is safe. *)
}

(** Consulted by [Mpi.run] when no explicit [?hooks] is given.  Default
    returns [None] (no exploration). *)
val factory : (unit -> t option) ref
