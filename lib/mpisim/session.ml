type t = { world : World.t; world_rank : int; name : string }

let init ?(name = "default") comm =
  { world = Comm.world comm; world_rank = Comm.world_rank_of comm (Comm.rank comm); name }

let name s = s.name
let pset_names s = World.pset_names s.world

let register_pset s pname ranks = World.register_pset s.world pname ranks

let self_pset = "mpi://self"

let pset_of s pname =
  if pname = self_pset then Some [| s.world_rank |] else World.pset s.world pname

let comm_of_pset s pname =
  let group =
    match pset_of s pname with
    | Some g -> g
    | None -> Errors.usage "Session.comm_of_pset: unknown process set %S" pname
  in
  let rank =
    let rec find i =
      if i >= Array.length group then
        Errors.usage "Session.comm_of_pset: rank %d is not a member of %S" s.world_rank pname
      else if group.(i) = s.world_rank then i
      else find (i + 1)
    in
    find 0
  in
  (* The key scopes the communicator to (session name, pset): two libraries
     initializing separate sessions over the same process set get distinct
     communicators, so their collective sequences and tag spaces cannot
     interfere — and no communication or shared counter visible to the
     other library is involved. *)
  let key = s.name ^ "\x00" ^ pname ^ if pname = self_pset then Printf.sprintf "\x00%d" s.world_rank else "" in
  let shared = World.session_comm s.world ~key group in
  Comm.make s.world shared ~rank
