module V = Ds.Vec

(* Queued one-sided operations, encoded for the fence exchange as control
   triples (kind, target_pos, count) plus separate payload and op
   streams. *)
type 'a pending_get = { g_pos : int; g_count : int; mutable result : 'a array option }

type 'a queued =
  | Q_put of { pos : int; data : 'a array }
  | Q_acc of { pos : int; op : 'a Op.t; data : 'a array }
  | Q_get of 'a pending_get

type 'a t = {
  comm : Comm.t;
  dt : 'a Datatype.t;
  dt_op : 'a Op.t Datatype.t;
  segment : 'a array;
  sizes : int array;
  queues : 'a queued V.t array; (* per target, in issue order *)
  tok : Checker.window_token;
}

(* The op-stream datatype must be the SAME value on every member of the
   window (type matching is by identity), so rank 0 creates it and ships it
   through an existentially packed envelope; receivers recover the typing
   with the window datatype's witness. *)
type packed_op_dt = Packed_op_dt : 'x Datatype.t * 'x Op.t Datatype.t -> packed_op_dt

let dt_envelope : packed_op_dt Datatype.t =
  Datatype.custom ~name:"MPI_Win_handle" ~extent:16 ()

let fresh_op_dt (type a) (_ : a Datatype.t) : a Op.t Datatype.t =
  Datatype.custom ~default:(Op.of_fun (fun a _ -> a)) ~name:"win_op" ~extent:8 ()

let distribute_op_dt (type a) comm (dt : a Datatype.t) : a Op.t Datatype.t =
  let tag = Comm.next_collective_tag comm in
  let p = Comm.size comm and r = Comm.rank comm in
  if r = 0 then begin
    let dop = fresh_op_dt dt in
    let box = [| Packed_op_dt (dt, dop) |] in
    for dst = 1 to p - 1 do
      P2p.send ~ctx:Internal comm dt_envelope box ~dst ~tag
    done;
    dop
  end
  else begin
    let box = [| Packed_op_dt (dt, fresh_op_dt dt) |] in
    ignore (P2p.recv ~ctx:Internal comm dt_envelope box ~src:0 ~tag);
    let (Packed_op_dt (dt', dop)) = box.(0) in
    match Datatype.equal_witness dt dt' with
    | Some Type.Equal -> dop
    | None -> Errors.usage "Win.create: members passed different window datatypes"
  end

(* RMA call spans on traced runs (category "rma"); queueing calls are
   instantaneous, the fence carries the communication time. *)
let traced comm ~op f =
  let w = Comm.world comm in
  if not (Trace.Recorder.active w.World.trace) then f ()
  else begin
    let rank = Comm.world_rank_of comm (Comm.rank comm) in
    let t0 = World.now w in
    Fun.protect
      ~finally:(fun () ->
        Trace.Recorder.add_span w.World.trace
          {
            Trace.Event.sp_rank = rank;
            sp_op = op;
            sp_cat = "rma";
            sp_comm = Comm.id comm;
            sp_seq = -1;
            sp_t0 = t0;
            sp_t1 = World.now w;
          })
      f
  end

let create comm dt segment =
  Profiling.record_call (Comm.world comm).World.prof "MPI_Win_create";
  traced comm ~op:"MPI_Win_create" @@ fun () ->
  let tok =
    Checker.track_window (Comm.world comm).World.check
      ~rank:(Comm.world_rank_of comm (Comm.rank comm))
      ~comm:(Comm.id comm)
  in
  let p = Comm.size comm in
  let sizes = Array.make p 0 in
  Collectives.allgather comm Datatype.int ~sendbuf:[| Array.length segment |] ~recvbuf:sizes
    ~count:1;
  {
    comm;
    dt;
    dt_op = distribute_op_dt comm dt;
    segment;
    sizes;
    queues = Array.init p (fun _ -> V.create ());
    tok;
  }

let free win =
  Profiling.record_call (Comm.world win.comm).World.prof "MPI_Win_free";
  traced win.comm ~op:"MPI_Win_free" @@ fun () -> Checker.release_window win.tok

let local win = win.segment
let size_of win target = win.sizes.(target)

let check_range win ~what ~target ~target_pos ~count =
  if target < 0 || target >= Comm.size win.comm then
    Errors.usage "Win.%s: bad target rank %d" what target;
  if target_pos < 0 || count < 0 || target_pos + count > win.sizes.(target) then
    Errors.usage "Win.%s: window range [%d, %d) exceeds target segment of %d elements" what
      target_pos (target_pos + count) win.sizes.(target)

let put win ~target ~target_pos data =
  Profiling.record_call (Comm.world win.comm).World.prof "MPI_Put";
  traced win.comm ~op:"MPI_Put" @@ fun () ->
  check_range win ~what:"put" ~target ~target_pos ~count:(Array.length data);
  V.push win.queues.(target) (Q_put { pos = target_pos; data = Array.copy data })

let accumulate win ~target ~target_pos op data =
  Profiling.record_call (Comm.world win.comm).World.prof "MPI_Accumulate";
  traced win.comm ~op:"MPI_Accumulate" @@ fun () ->
  check_range win ~what:"accumulate" ~target ~target_pos ~count:(Array.length data);
  V.push win.queues.(target) (Q_acc { pos = target_pos; op; data = Array.copy data })

let get win ~target ~target_pos ~count =
  Profiling.record_call (Comm.world win.comm).World.prof "MPI_Get";
  traced win.comm ~op:"MPI_Get" @@ fun () ->
  check_range win ~what:"get" ~target ~target_pos ~count;
  let g = { g_pos = target_pos; g_count = count; result = None } in
  V.push win.queues.(target) (Q_get g);
  g

let get_result g =
  match g.result with
  | Some data -> data
  | None -> Errors.usage "Win.get_result: the epoch is still open (fence first)"

let exclusive_scan counts =
  let d = Array.make (Array.length counts) 0 in
  for i = 1 to Array.length counts - 1 do
    d.(i) <- d.(i - 1) + counts.(i - 1)
  done;
  d

(* Generic irregular exchange used by the fence: counts are transposed with
   an alltoall, then one alltoallv moves the data. *)
let exchange_v comm dt ~fill (outgoing : 'x V.t array) =
  let p = Comm.size comm in
  let scounts = Array.map V.length outgoing in
  let sdispls = exclusive_scan scounts in
  let sendbuf = Array.make (max 1 (Array.fold_left ( + ) 0 scounts)) fill in
  Array.iteri (fun t v -> V.iteri (fun i x -> sendbuf.(sdispls.(t) + i) <- x) v) outgoing;
  let rcounts = Array.make p 0 in
  Collectives.alltoall comm Datatype.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max 1 total) fill in
  Collectives.alltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  (recvbuf, rcounts, rdispls)

let fill_of win =
  match Datatype.default_elt win.dt with
  | Some d -> d
  | None ->
      (* any queued payload element serves as filler *)
      let found = ref None in
      Array.iter
        (fun q ->
          V.iter
            (function
              | Q_put { data; _ } | Q_acc { data; _ } ->
                  if Array.length data > 0 && !found = None then found := Some data.(0)
              | Q_get _ -> ())
            q)
        win.queues;
      (match !found with
      | Some x -> x
      | None ->
          if Array.length win.segment > 0 then win.segment.(0)
          else Errors.usage "Win.fence: datatype %s needs ~default" (Datatype.name win.dt))

let fence win =
  let comm = win.comm in
  Profiling.record_call (Comm.world comm).World.prof "MPI_Win_fence";
  traced comm ~op:"MPI_Win_fence" @@ fun () ->
  let p = Comm.size comm in
  (* encode the queues: control triples, payload stream, op stream, and the
     per-target list of pending gets in issue order *)
  let control = Array.init p (fun _ -> V.create ()) in
  let payload = Array.init p (fun _ -> V.create ()) in
  let ops = Array.init p (fun _ -> V.create ()) in
  let my_gets = Array.init p (fun _ -> V.create ()) in
  Array.iteri
    (fun target q ->
      V.iter
        (function
          | Q_put { pos; data } ->
              V.push control.(target) 0;
              V.push control.(target) pos;
              V.push control.(target) (Array.length data);
              Array.iter (V.push payload.(target)) data
          | Q_acc { pos; op; data } ->
              V.push control.(target) 1;
              V.push control.(target) pos;
              V.push control.(target) (Array.length data);
              Array.iter (V.push payload.(target)) data;
              V.push ops.(target) op
          | Q_get g ->
              V.push control.(target) 2;
              V.push control.(target) g.g_pos;
              V.push control.(target) g.g_count;
              V.push my_gets.(target) g)
        q;
      V.clear q)
    win.queues;
  let fill = fill_of win in
  let ctl, ctl_counts, ctl_displs = exchange_v comm Datatype.int ~fill:0 control in
  let pay, _, pay_displs = exchange_v comm win.dt ~fill payload in
  let op_fill = Op.of_fun (fun a _ -> a) in
  let opv, _, op_displs = exchange_v comm win.dt_op ~fill:op_fill ops in
  (* apply at the target, origins in rank order, ops in issue order *)
  let replies = Array.init p (fun _ -> V.create ()) in
  let applied = ref 0 in
  for origin = 0 to p - 1 do
    let c = ref ctl_displs.(origin) in
    let stop = ctl_displs.(origin) + ctl_counts.(origin) in
    let pcur = ref pay_displs.(origin) in
    let ocur = ref op_displs.(origin) in
    while !c < stop do
      let kind = ctl.(!c) and pos = ctl.(!c + 1) and count = ctl.(!c + 2) in
      c := !c + 3;
      (match kind with
      | 0 ->
          Array.blit pay !pcur win.segment pos count;
          pcur := !pcur + count
      | 1 ->
          let op = opv.(!ocur) in
          incr ocur;
          for i = 0 to count - 1 do
            win.segment.(pos + i) <- Op.apply op win.segment.(pos + i) pay.(!pcur + i)
          done;
          pcur := !pcur + count
      | 2 ->
          for i = 0 to count - 1 do
            V.push replies.(origin) win.segment.(pos + i)
          done
      | _ -> Errors.usage "Win.fence: corrupt control stream");
      applied := !applied + count
    done
  done;
  Comm.compute comm (4.0e-9 *. float_of_int !applied);
  (* answer the gets *)
  let rep, _, rep_displs = exchange_v comm win.dt ~fill replies in
  for target = 0 to p - 1 do
    let cursor = ref rep_displs.(target) in
    V.iter
      (fun g ->
        g.result <- Some (Array.sub rep !cursor g.g_count);
        cursor := !cursor + g.g_count)
      my_gets.(target)
  done;
  Collectives.barrier comm
