type t = {
  table : (string, int ref) Hashtbl.t;
  algo_table : (string, int ref) Hashtbl.t;
  mutable msg_count : int;
  mutable byte_count : int;
}

type snapshot = {
  calls : (string * int) list;
  algo_calls : (string * int) list;
  messages : int;
  bytes : int;
}

let create () =
  { table = Hashtbl.create 32; algo_table = Hashtbl.create 32; msg_count = 0; byte_count = 0 }

let bump table name =
  match Hashtbl.find_opt table name with
  | Some r -> incr r
  | None -> Hashtbl.add table name (ref 1)

let record_call t name = bump t.table name
let record_algo t name = bump t.algo_table name

let record_message t ~bytes =
  t.msg_count <- t.msg_count + 1;
  t.byte_count <- t.byte_count + bytes

let sorted_counts table =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  {
    calls = sorted_counts t.table;
    algo_calls = sorted_counts t.algo_table;
    messages = t.msg_count;
    bytes = t.byte_count;
  }

let reset t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.algo_table;
  t.msg_count <- 0;
  t.byte_count <- 0

let count_of name counts = match List.assoc_opt name counts with Some n -> n | None -> 0

(* Annotated names like "MPI_Allreduce[rabenseifner]" live in the algorithm
   category so the plain-call table keeps its historical meaning. *)
let calls_of name s =
  match List.assoc_opt name s.calls with
  | Some n -> n
  | None -> count_of name s.algo_calls

let algo_calls_of name s = count_of name s.algo_calls

let diff_counts before after =
  let names = List.sort_uniq String.compare (List.map fst before @ List.map fst after) in
  List.filter_map
    (fun name ->
      let d = count_of name after - count_of name before in
      if d = 0 then None else Some (name, d))
    names

let diff ~before ~after =
  {
    calls = diff_counts before.calls after.calls;
    algo_calls = diff_counts before.algo_calls after.algo_calls;
    messages = after.messages - before.messages;
    bytes = after.bytes - before.bytes;
  }

let pp fmt s =
  Format.fprintf fmt "@[<v>messages=%d bytes=%d" s.messages s.bytes;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%s: %d" name n) s.calls;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%s: %d" name n) s.algo_calls;
  Format.fprintf fmt "@]"
