(** User-Level Failure Mitigation primitives (MPI 5 / ULFM proposal).

    Failure injection kills a rank's fiber; operations that depend on the
    dead rank raise {!Errors.Process_failed} after a detection delay.
    Recovery follows the ULFM recipe the paper shows in Fig. 12:
    [revoke] to interrupt ongoing communication everywhere, then [shrink]
    to build a new communicator of survivors. *)

(** [schedule_failure world ~at ~world_rank] injects a process failure at
    simulated time [at]. *)
val schedule_failure : World.t -> at:float -> world_rank:int -> unit

(** [schedule_failures world ~fail_at] arms a deterministic {e time-based}
    failure schedule: each [(world_rank, sim_time)] entry kills
    [world_rank] at simulated time [sim_time] (clamped to "now" when
    already past, as in {!schedule_failure}).

    Determinism semantics: the kills are discrete events on the
    simulated clock, so a given schedule produces the same failure
    points — relative to every rank's progress — on every run of a
    deterministic program.  Entries firing at the same instant are
    processed in list order; killing an already-dead rank is a no-op, so
    duplicate entries are harmless.  The whole schedule is validated
    before any kill is armed.
    @raise Errors.Usage_error on an out-of-range rank or a NaN time. *)
val schedule_failures : World.t -> fail_at:(int * float) list -> unit

(** [revoke comm] marks the communicator revoked on all ranks; pending and
    future operations on it raise {!Errors.Comm_revoked}. *)
val revoke : Comm.t -> unit

(** [is_revoked comm] tests the revocation flag. *)
val is_revoked : Comm.t -> bool

(** [num_failed comm] counts dead members. *)
val num_failed : Comm.t -> int

(** [shrink comm] is collective over the survivors: returns a fresh
    (non-revoked) communicator containing exactly the live members of
    [comm], in their original relative order. *)
val shrink : Comm.t -> Comm.t

(** [agree comm v] reaches agreement on the bitwise AND of [v] over all
    surviving members (collective over survivors). *)
val agree : Comm.t -> int -> int
