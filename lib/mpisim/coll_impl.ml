(* Algorithm bodies for the tuned-collective subsystem.  Selection lives in
   Coll_algos.Select; dispatch and profiling live in Collectives.  Bodies
   rely on two simulator guarantees: isend copies its payload eagerly (so
   buffers may be reused immediately), and messages on one (src, dst, tag)
   link match in FIFO order. *)

let combine comm op acc tmp count ~received_left =
  if received_left then
    for i = 0 to count - 1 do
      acc.(i) <- Op.apply op tmp.(i) acc.(i)
    done
  else
    for i = 0 to count - 1 do
      acc.(i) <- Op.apply op acc.(i) tmp.(i)
    done;
  if count > 0 then Comm.compute comm (float_of_int count *. Op.cost_per_element op)

(* Dissemination barrier: round k talks to ranks +-2^k; all offsets are
   distinct mod p, so one tag suffices. *)
let dissemination comm ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let token = [| 0 |] in
  let k = ref 1 in
  while !k < p do
    let dst = (r + !k) mod p and src = (r - !k + p) mod p in
    let req = P2p.isend ~ctx:Internal comm Datatype.int token ~dst ~tag in
    ignore (P2p.recv ~ctx:Internal comm Datatype.int token ~src ~tag);
    ignore (Request.wait req);
    k := !k lsl 1
  done

(* The largest power of two <= p. *)
let largest_pow2 p =
  let rec go pow = if pow * 2 <= p then go (pow * 2) else pow in
  go 1

(* ------------------------------------------------------------------ *)
(* Broadcast.                                                          *)
(* ------------------------------------------------------------------ *)

(* Binomial-tree broadcast (MPICH-style). *)
let bcast_binomial comm dt buf pos count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  if p > 1 && count > 0 then begin
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    while !mask < p && rel land !mask = 0 do
      mask := !mask lsl 1
    done;
    if rel <> 0 then begin
      let src = (rel - !mask + root + p) mod p in
      ignore (P2p.recv ~ctx:Internal ~pos ~count comm dt buf ~src ~tag)
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if rel + !mask < p then begin
        let dst = (rel + !mask + root) mod p in
        P2p.send ~ctx:Internal ~pos ~count comm dt buf ~dst ~tag
      end;
      mask := !mask lsr 1
    done
  end

(* van de Geijn broadcast: binomial scatter of p roughly equal blocks
   (block i belongs to relative rank i), then a ring allgather of the
   blocks.  Bandwidth-optimal: each rank moves ~2n bytes instead of the
   binomial tree's log2(p)*n. *)
let bcast_scatter_allgather comm dt buf pos count ~root ~tag ~tag2 =
  let p = Comm.size comm and r = Comm.rank comm in
  if p > 1 && count > 0 then begin
    let rel = (r - root + p) mod p in
    let start i = i * count / p in
    (* Scatter: relative rank [rel] first receives the range covering its
       whole binomial subtree, then forwards the upper halves. *)
    let mask = ref 1 in
    while !mask < p && rel land !mask = 0 do
      mask := !mask lsl 1
    done;
    let limit = ref (min (rel + !mask) p) in
    if rel <> 0 then begin
      let src = (rel - !mask + root + p) mod p in
      let lo = start rel and hi = start !limit in
      if hi > lo then
        ignore (P2p.recv ~ctx:Internal ~pos:(pos + lo) ~count:(hi - lo) comm dt buf ~src ~tag)
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if rel + !mask < p then begin
        let child = rel + !mask in
        let dst = (child + root) mod p in
        let lo = start child and hi = start !limit in
        if hi > lo then
          P2p.send ~ctx:Internal ~pos:(pos + lo) ~count:(hi - lo) comm dt buf ~dst ~tag;
        limit := child
      end;
      mask := !mask lsr 1
    done;
    (* Ring allgather of the p blocks over relative ranks. *)
    let dst = (((rel + 1) mod p) + root) mod p and src = (((rel - 1 + p) mod p) + root) mod p in
    for step = 1 to p - 1 do
      let sb = (rel - step + 1 + p) mod p and rb = (rel - step + p) mod p in
      let s_lo = start sb and s_hi = start (sb + 1) in
      let r_lo = start rb and r_hi = start (rb + 1) in
      let req =
        if s_hi > s_lo then
          Some
            (P2p.isend ~ctx:Internal ~pos:(pos + s_lo) ~count:(s_hi - s_lo) comm dt buf ~dst
               ~tag:tag2)
        else None
      in
      if r_hi > r_lo then
        ignore (P2p.recv ~ctx:Internal ~pos:(pos + r_lo) ~count:(r_hi - r_lo) comm dt buf ~src ~tag:tag2);
      match req with Some req -> ignore (Request.wait req) | None -> ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Reduce.                                                             *)
(* ------------------------------------------------------------------ *)

(* Binomial-tree reduction.  Reassociates (and, for the receive-combines,
   commutes) the operation — the canonical source of float irreproducibility
   across different p that Sec. V-C addresses. *)
let reduce_binomial comm dt op ~sendbuf ~pos ~count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let acc = Array.sub sendbuf pos count in
  if p = 1 || count = 0 then acc
  else begin
    let tmp = Array.copy acc in
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    let running = ref true in
    while !running && !mask < p do
      if rel land !mask = 0 then begin
        let src_rel = rel lor !mask in
        if src_rel < p then begin
          let src = (src_rel + root) mod p in
          ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
          combine comm op acc tmp count ~received_left:false
        end
      end
      else begin
        let dst = ((rel lxor !mask) + root) mod p in
        P2p.send ~ctx:Internal ~count comm dt acc ~dst ~tag;
        running := false
      end;
      mask := !mask lsl 1
    done;
    acc
  end

(* ------------------------------------------------------------------ *)
(* Allreduce.                                                          *)
(* ------------------------------------------------------------------ *)

let allreduce_reduce_bcast comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag ~tag2 =
  let acc = reduce_binomial comm dt op ~sendbuf ~pos ~count ~root:0 ~tag in
  if Comm.rank comm = 0 then Array.blit acc 0 recvbuf 0 count;
  bcast_binomial comm dt recvbuf 0 count ~root:0 ~tag:tag2

(* Fold the ranks beyond the largest power of two into their even
   neighbours (MPICH rem-handling): afterwards [pof2] "new ranks"
   participate in the power-of-two schedule, the rest wait for the result.
   Returns the new rank, or -1 for a parked rank. *)
let fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 0 then begin
      P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:(r + 1) ~tag:tag_fold;
      -1
    end
    else begin
      ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:(r - 1) ~tag:tag_fold);
      (* the sender's rank is lower: its data goes on the left *)
      combine comm op recvbuf tmp count ~received_left:true;
      r asr 1
    end
  else r - rem

(* Return the folded-out ranks' results. *)
let unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 1 then P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:(r - 1) ~tag:tag_fold
    else ignore (P2p.recv ~ctx:Internal ~count comm dt recvbuf ~src:(r + 1) ~tag:tag_fold)

let real_of_new ~rem nd = if nd < rem then (nd * 2) + 1 else nd + rem

let allreduce_recursive_doubling comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold ~tag =
  let p = Comm.size comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let pof2 = largest_pow2 p in
    let rem = p - pof2 in
    let newrank = fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold in
    if newrank >= 0 then begin
      let mask = ref 1 in
      while !mask < pof2 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let req = P2p.isend ~ctx:Internal ~count comm dt recvbuf ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:dst ~tag);
        ignore (Request.wait req);
        combine comm op recvbuf tmp count ~received_left:(newdst < newrank);
        mask := !mask lsl 1
      done
    end;
    unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold
  end

(* Rabenseifner: recursive-halving reduce-scatter followed by a
   recursive-doubling allgather over the reduced blocks (ported from the
   MPICH reduce_scatter_allgather schedule). *)
let allreduce_rabenseifner comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold ~tag_rs ~tag_ag =
  let p = Comm.size comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let pof2 = largest_pow2 p in
    let rem = p - pof2 in
    let newrank = fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold in
    if newrank >= 0 && pof2 > 1 then begin
      let cnts = Array.init pof2 (fun i -> (count / pof2) + if i < count mod pof2 then 1 else 0) in
      let disps = Array.make pof2 0 in
      for i = 1 to pof2 - 1 do
        disps.(i) <- disps.(i - 1) + cnts.(i - 1)
      done;
      let sum_range a b =
        let s = ref 0 in
        for i = a to b - 1 do
          s := !s + cnts.(i)
        done;
        !s
      in
      let exchange ~tag ~send_idx ~send_cnt ~recv_idx ~recv_cnt ~dst ~into =
        let req =
          if send_cnt > 0 then
            Some
              (P2p.isend ~ctx:Internal ~pos:disps.(send_idx) ~count:send_cnt comm dt recvbuf ~dst
                 ~tag)
          else None
        in
        if recv_cnt > 0 then
          ignore (P2p.recv ~ctx:Internal ~pos:disps.(recv_idx) ~count:recv_cnt comm dt into ~src:dst ~tag);
        match req with Some req -> ignore (Request.wait req) | None -> ()
      in
      (* Reduce-scatter by recursive halving. *)
      let send_idx = ref 0 and recv_idx = ref 0 and last_idx = ref pof2 in
      let mask = ref 1 in
      while !mask < pof2 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let half = pof2 / (!mask * 2) in
        let send_cnt, recv_cnt =
          if newrank < newdst then begin
            send_idx := !recv_idx + half;
            (sum_range !send_idx !last_idx, sum_range !recv_idx !send_idx)
          end
          else begin
            recv_idx := !send_idx + half;
            (sum_range !send_idx !recv_idx, sum_range !recv_idx !last_idx)
          end
        in
        exchange ~tag:tag_rs ~send_idx:!send_idx ~send_cnt ~recv_idx:!recv_idx ~recv_cnt ~dst
          ~into:tmp;
        if recv_cnt > 0 then begin
          (* fold the received segment into the kept one *)
          let off = disps.(!recv_idx) in
          let acc = Array.sub recvbuf off recv_cnt and inc = Array.sub tmp off recv_cnt in
          combine comm op acc inc recv_cnt ~received_left:(newdst < newrank);
          Array.blit acc 0 recvbuf off recv_cnt
        end;
        send_idx := !recv_idx;
        mask := !mask lsl 1;
        if !mask < pof2 then last_idx := !recv_idx + (pof2 / !mask)
      done;
      (* Allgather by recursive doubling. *)
      mask := pof2 asr 1;
      while !mask > 0 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let half = pof2 / (!mask * 2) in
        let send_cnt, recv_cnt =
          if newrank < newdst then begin
            if !mask <> pof2 / 2 then last_idx := !last_idx + half;
            recv_idx := !send_idx + half;
            (sum_range !send_idx !recv_idx, sum_range !recv_idx !last_idx)
          end
          else begin
            recv_idx := !send_idx - half;
            (sum_range !send_idx !last_idx, sum_range !recv_idx !send_idx)
          end
        in
        exchange ~tag:tag_ag ~send_idx:!send_idx ~send_cnt ~recv_idx:!recv_idx ~recv_cnt ~dst
          ~into:recvbuf;
        if newrank > newdst then send_idx := !recv_idx;
        mask := !mask asr 1
      done
    end;
    unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold
  end

(* Ring allreduce: reduce-scatter around the ring (p-1 steps), then a ring
   allgather of the reduced blocks.  Linear startups, optimal volume. *)
let allreduce_ring comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_rs ~tag_ag =
  let p = Comm.size comm and r = Comm.rank comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let cnts = Array.init p (fun i -> (count / p) + if i < count mod p then 1 else 0) in
    let disps = Array.make p 0 in
    for i = 1 to p - 1 do
      disps.(i) <- disps.(i - 1) + cnts.(i - 1)
    done;
    let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
    let step_exchange ~tag ~sb ~rb ~into ~fold =
      let req =
        if cnts.(sb) > 0 then
          Some (P2p.isend ~ctx:Internal ~pos:disps.(sb) ~count:cnts.(sb) comm dt recvbuf ~dst ~tag)
        else None
      in
      if cnts.(rb) > 0 then begin
        ignore (P2p.recv ~ctx:Internal ~pos:disps.(rb) ~count:cnts.(rb) comm dt into ~src ~tag);
        if fold then begin
          let acc = Array.sub recvbuf disps.(rb) cnts.(rb)
          and inc = Array.sub tmp disps.(rb) cnts.(rb) in
          (* the incoming partial sum starts at the block's owner: left *)
          combine comm op acc inc cnts.(rb) ~received_left:true;
          Array.blit acc 0 recvbuf disps.(rb) cnts.(rb)
        end
      end;
      match req with Some req -> ignore (Request.wait req) | None -> ()
    in
    (* Reduce-scatter: after step s rank r has accumulated s+1 inputs into
       block (r - s); rank r ends owning block (r + 1) mod p. *)
    for s = 1 to p - 1 do
      let sb = (r - s + 1 + p) mod p and rb = (r - s + p) mod p in
      step_exchange ~tag:tag_rs ~sb ~rb ~into:tmp ~fold:true
    done;
    (* Allgather: circulate the reduced blocks. *)
    for s = 0 to p - 2 do
      let sb = (r + 1 - s + (2 * p)) mod p and rb = (r - s + p) mod p in
      step_exchange ~tag:tag_ag ~sb ~rb ~into:recvbuf ~fold:false
    done
  end

(* ------------------------------------------------------------------ *)
(* Allgather.                                                          *)
(* ------------------------------------------------------------------ *)

(* Copy the caller's block into place (shared by the p = 1 fast path and
   the ring/recursive-doubling seeds). *)
let seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block =
  let dst_pos = rpos + block in
  if my_block_buf != recvbuf || my_block_pos <> dst_pos then
    Array.blit my_block_buf my_block_pos recvbuf dst_pos count

(* Bruck's allgather: logarithmic number of rounds for arbitrary p. *)
let allgather_bruck comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    if p = 1 then seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:0
    else begin
      let temp = Array.make (p * count) my_block_buf.(my_block_pos) in
      Array.blit my_block_buf my_block_pos temp 0 count;
      let m = ref 1 in
      while !m < p do
        let s = min !m (p - !m) in
        let dst = (r - !m + p) mod p and src = (r + !m) mod p in
        let req = P2p.isend ~ctx:Internal ~count:(s * count) comm dt temp ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~pos:(!m * count) ~count:(s * count) comm dt temp ~src ~tag);
        ignore (Request.wait req);
        m := !m + s
      done;
      (* Undo the rotation: temp block i holds rank (r+i) mod p's data. *)
      for i = 0 to p - 1 do
        Array.blit temp (i * count) recvbuf (rpos + (((r + i) mod p) * count)) count
      done
    end
  end

(* Ring allgather: p-1 neighbour steps, each forwarding the block received
   in the previous step. *)
let allgather_ring comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:(r * count);
    if p > 1 then begin
      let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
      for step = 1 to p - 1 do
        let sb = (r - step + 1 + p) mod p and rb = (r - step + p) mod p in
        let req =
          P2p.isend ~ctx:Internal ~pos:(rpos + (sb * count)) ~count comm dt recvbuf ~dst ~tag
        in
        ignore (P2p.recv ~ctx:Internal ~pos:(rpos + (rb * count)) ~count comm dt recvbuf ~src ~tag);
        ignore (Request.wait req)
      done
    end
  end

(* Recursive doubling (power-of-two p): round k swaps the 2^k blocks held
   with the partner rank lxor 2^k; ranges stay aligned and contiguous. *)
let allgather_recursive_doubling comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if p land (p - 1) <> 0 then
    Errors.usage "allgather_recursive_doubling requires a power-of-two communicator (p = %d)" p;
  if count > 0 then begin
    seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:(r * count);
    let mask = ref 1 in
    while !mask < p do
      let partner = r lxor !mask in
      let my_base = r land lnot (!mask - 1) and partner_base = partner land lnot (!mask - 1) in
      let req =
        P2p.isend ~ctx:Internal ~pos:(rpos + (my_base * count)) ~count:(!mask * count) comm dt
          recvbuf ~dst:partner ~tag
      in
      ignore
        (P2p.recv ~ctx:Internal ~pos:(rpos + (partner_base * count)) ~count:(!mask * count) comm dt
           recvbuf ~src:partner ~tag);
      ignore (Request.wait req);
      mask := !mask lsl 1
    done
  end

(* ------------------------------------------------------------------ *)
(* Alltoall.                                                           *)
(* ------------------------------------------------------------------ *)

(* Irregular exchanges post every request up front and wait for all of
   them (the linear algorithm real implementations use): latency is hidden
   by overlap, but each of the p-1 peers still costs a message start-up —
   including zero-count pairs, which is exactly why Alltoall(v) has
   Omega(p) complexity per call (paper Sec. V-A). *)
let post_all_exchange comm dt ~tag ~scount_of ~spos_of ~rcount_of ~rpos_of ~sendbuf ~recvbuf =
  let p = Comm.size comm and r = Comm.rank comm in
  Array.blit sendbuf (spos_of r) recvbuf (rpos_of r) (scount_of r);
  let recv_reqs =
    List.init (p - 1) (fun i ->
        let src = (r - 1 - i + p) mod p in
        P2p.irecv ~ctx:Internal ~pos:(rpos_of src) ~count:(rcount_of src) comm dt recvbuf ~src ~tag)
  in
  let send_reqs =
    List.init (p - 1) (fun i ->
        let dst = (r + 1 + i) mod p in
        P2p.isend ~ctx:Internal ~pos:(spos_of dst) ~count:(scount_of dst) comm dt sendbuf ~dst ~tag)
  in
  ignore (Request.wait_all recv_reqs);
  ignore (Request.wait_all send_reqs)

let alltoall_pairwise comm dt ~sendbuf ~recvbuf ~count ~tag =
  post_all_exchange comm dt ~tag
    ~scount_of:(fun _ -> count)
    ~spos_of:(fun d -> d * count)
    ~rcount_of:(fun _ -> count)
    ~rpos_of:(fun s -> s * count)
    ~sendbuf ~recvbuf

(* Bruck's alltoall: rotate locally, then in round k ship every block whose
   index has bit k set to rank r + 2^k (aggregated into one message), and
   finally undo the rotation.  ceil(log2 p) startups instead of p - 1. *)
let alltoall_bruck comm dt ~sendbuf ~recvbuf ~count ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    if p = 1 then Array.blit sendbuf 0 recvbuf 0 count
    else begin
      let temp = Array.make (p * count) sendbuf.(0) in
      (* Phase 1: temp block i = my block for destination (r + i) mod p. *)
      for i = 0 to p - 1 do
        Array.blit sendbuf (((r + i) mod p) * count) temp (i * count) count
      done;
      let max_sel = (p + 1) / 2 in
      let cbuf = Array.make (max_sel * count) temp.(0) in
      let rbuf = Array.make (max_sel * count) temp.(0) in
      let pof = ref 1 in
      while !pof < p do
        let dst = (r + !pof) mod p and src = (r - !pof + p) mod p in
        let nsel = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then begin
            Array.blit temp (i * count) cbuf (!nsel * count) count;
            incr nsel
          end
        done;
        let req = P2p.isend ~ctx:Internal ~count:(!nsel * count) comm dt cbuf ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~count:(!nsel * count) comm dt rbuf ~src ~tag);
        ignore (Request.wait req);
        let k = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then begin
            Array.blit rbuf (!k * count) temp (i * count) count;
            incr k
          end
        done;
        pof := !pof lsl 1
      done;
      (* Phase 3: temp block i now holds the data from rank (r - i + p) mod
         p; place it at that source's slot. *)
      for i = 0 to p - 1 do
        Array.blit temp (i * count) recvbuf (((r - i + p) mod p) * count) count
      done
    end
  end
