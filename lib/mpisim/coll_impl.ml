(* Algorithm bodies for the tuned-collective subsystem.  Selection lives in
   Coll_algos.Select; dispatch and profiling live in Collectives.  Bodies
   rely on two simulator guarantees: isend copies its payload eagerly (so
   buffers may be reused immediately), and messages on one (src, dst, tag)
   link match in FIFO order. *)

let combine comm op acc tmp count ~received_left =
  if received_left then
    for i = 0 to count - 1 do
      acc.(i) <- Op.apply op tmp.(i) acc.(i)
    done
  else
    for i = 0 to count - 1 do
      acc.(i) <- Op.apply op acc.(i) tmp.(i)
    done;
  if count > 0 then Comm.compute comm (float_of_int count *. Op.cost_per_element op)

(* Dissemination barrier: round k talks to ranks +-2^k; all offsets are
   distinct mod p, so one tag suffices. *)
let dissemination comm ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let token = [| 0 |] in
  let k = ref 1 in
  while !k < p do
    let dst = (r + !k) mod p and src = (r - !k + p) mod p in
    let req = P2p.isend ~ctx:Internal comm Datatype.int token ~dst ~tag in
    ignore (P2p.recv ~ctx:Internal comm Datatype.int token ~src ~tag);
    ignore (Request.wait req);
    k := !k lsl 1
  done

(* The largest power of two <= p. *)
let largest_pow2 p =
  let rec go pow = if pow * 2 <= p then go (pow * 2) else pow in
  go 1

(* ------------------------------------------------------------------ *)
(* Broadcast.                                                          *)
(* ------------------------------------------------------------------ *)

(* Binomial-tree broadcast (MPICH-style). *)
let bcast_binomial comm dt buf pos count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  if p > 1 && count > 0 then begin
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    while !mask < p && rel land !mask = 0 do
      mask := !mask lsl 1
    done;
    if rel <> 0 then begin
      let src = (rel - !mask + root + p) mod p in
      ignore (P2p.recv ~ctx:Internal ~pos ~count comm dt buf ~src ~tag)
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if rel + !mask < p then begin
        let dst = (rel + !mask + root) mod p in
        P2p.send ~ctx:Internal ~pos ~count comm dt buf ~dst ~tag
      end;
      mask := !mask lsr 1
    done
  end

(* van de Geijn broadcast: binomial scatter of p roughly equal blocks
   (block i belongs to relative rank i), then a ring allgather of the
   blocks.  Bandwidth-optimal: each rank moves ~2n bytes instead of the
   binomial tree's log2(p)*n. *)
let bcast_scatter_allgather comm dt buf pos count ~root ~tag ~tag2 =
  let p = Comm.size comm and r = Comm.rank comm in
  if p > 1 && count > 0 then begin
    let rel = (r - root + p) mod p in
    let start i = i * count / p in
    (* Scatter: relative rank [rel] first receives the range covering its
       whole binomial subtree, then forwards the upper halves. *)
    let mask = ref 1 in
    while !mask < p && rel land !mask = 0 do
      mask := !mask lsl 1
    done;
    let limit = ref (min (rel + !mask) p) in
    if rel <> 0 then begin
      let src = (rel - !mask + root + p) mod p in
      let lo = start rel and hi = start !limit in
      if hi > lo then
        ignore (P2p.recv ~ctx:Internal ~pos:(pos + lo) ~count:(hi - lo) comm dt buf ~src ~tag)
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if rel + !mask < p then begin
        let child = rel + !mask in
        let dst = (child + root) mod p in
        let lo = start child and hi = start !limit in
        if hi > lo then
          P2p.send ~ctx:Internal ~pos:(pos + lo) ~count:(hi - lo) comm dt buf ~dst ~tag;
        limit := child
      end;
      mask := !mask lsr 1
    done;
    (* Ring allgather of the p blocks over relative ranks. *)
    let dst = (((rel + 1) mod p) + root) mod p and src = (((rel - 1 + p) mod p) + root) mod p in
    for step = 1 to p - 1 do
      let sb = (rel - step + 1 + p) mod p and rb = (rel - step + p) mod p in
      let s_lo = start sb and s_hi = start (sb + 1) in
      let r_lo = start rb and r_hi = start (rb + 1) in
      let req =
        if s_hi > s_lo then
          Some
            (P2p.isend ~ctx:Internal ~pos:(pos + s_lo) ~count:(s_hi - s_lo) comm dt buf ~dst
               ~tag:tag2)
        else None
      in
      if r_hi > r_lo then
        ignore (P2p.recv ~ctx:Internal ~pos:(pos + r_lo) ~count:(r_hi - r_lo) comm dt buf ~src ~tag:tag2);
      match req with Some req -> ignore (Request.wait req) | None -> ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Reduce.                                                             *)
(* ------------------------------------------------------------------ *)

(* Binomial-tree reduction.  Reassociates (and, for the receive-combines,
   commutes) the operation — the canonical source of float irreproducibility
   across different p that Sec. V-C addresses. *)
let reduce_binomial comm dt op ~sendbuf ~pos ~count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let acc = Array.sub sendbuf pos count in
  if p = 1 || count = 0 then acc
  else begin
    let tmp = Array.copy acc in
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    let running = ref true in
    while !running && !mask < p do
      if rel land !mask = 0 then begin
        let src_rel = rel lor !mask in
        if src_rel < p then begin
          let src = (src_rel + root) mod p in
          ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
          combine comm op acc tmp count ~received_left:false
        end
      end
      else begin
        let dst = ((rel lxor !mask) + root) mod p in
        P2p.send ~ctx:Internal ~count comm dt acc ~dst ~tag;
        running := false
      end;
      mask := !mask lsl 1
    done;
    acc
  end

(* ------------------------------------------------------------------ *)
(* Allreduce.                                                          *)
(* ------------------------------------------------------------------ *)

let allreduce_reduce_bcast comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag ~tag2 =
  let acc = reduce_binomial comm dt op ~sendbuf ~pos ~count ~root:0 ~tag in
  if Comm.rank comm = 0 then Array.blit acc 0 recvbuf 0 count;
  bcast_binomial comm dt recvbuf 0 count ~root:0 ~tag:tag2

(* Fold the ranks beyond the largest power of two into their even
   neighbours (MPICH rem-handling): afterwards [pof2] "new ranks"
   participate in the power-of-two schedule, the rest wait for the result.
   Returns the new rank, or -1 for a parked rank. *)
let fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 0 then begin
      P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:(r + 1) ~tag:tag_fold;
      -1
    end
    else begin
      ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:(r - 1) ~tag:tag_fold);
      (* the sender's rank is lower: its data goes on the left *)
      combine comm op recvbuf tmp count ~received_left:true;
      r asr 1
    end
  else r - rem

(* Return the folded-out ranks' results. *)
let unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold =
  let r = Comm.rank comm in
  if r < 2 * rem then
    if r land 1 = 1 then P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:(r - 1) ~tag:tag_fold
    else ignore (P2p.recv ~ctx:Internal ~count comm dt recvbuf ~src:(r + 1) ~tag:tag_fold)

let real_of_new ~rem nd = if nd < rem then (nd * 2) + 1 else nd + rem

let allreduce_recursive_doubling comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold ~tag =
  let p = Comm.size comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let pof2 = largest_pow2 p in
    let rem = p - pof2 in
    let newrank = fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold in
    if newrank >= 0 then begin
      let mask = ref 1 in
      while !mask < pof2 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let req = P2p.isend ~ctx:Internal ~count comm dt recvbuf ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:dst ~tag);
        ignore (Request.wait req);
        combine comm op recvbuf tmp count ~received_left:(newdst < newrank);
        mask := !mask lsl 1
      done
    end;
    unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold
  end

(* Rabenseifner: recursive-halving reduce-scatter followed by a
   recursive-doubling allgather over the reduced blocks (ported from the
   MPICH reduce_scatter_allgather schedule). *)
let allreduce_rabenseifner comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold ~tag_rs ~tag_ag =
  let p = Comm.size comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let pof2 = largest_pow2 p in
    let rem = p - pof2 in
    let newrank = fold_to_pow2 comm dt op ~recvbuf ~tmp ~count ~rem ~tag_fold in
    if newrank >= 0 && pof2 > 1 then begin
      let cnts = Array.init pof2 (fun i -> (count / pof2) + if i < count mod pof2 then 1 else 0) in
      let disps = Array.make pof2 0 in
      for i = 1 to pof2 - 1 do
        disps.(i) <- disps.(i - 1) + cnts.(i - 1)
      done;
      let sum_range a b =
        let s = ref 0 in
        for i = a to b - 1 do
          s := !s + cnts.(i)
        done;
        !s
      in
      let exchange ~tag ~send_idx ~send_cnt ~recv_idx ~recv_cnt ~dst ~into =
        let req =
          if send_cnt > 0 then
            Some
              (P2p.isend ~ctx:Internal ~pos:disps.(send_idx) ~count:send_cnt comm dt recvbuf ~dst
                 ~tag)
          else None
        in
        if recv_cnt > 0 then
          ignore (P2p.recv ~ctx:Internal ~pos:disps.(recv_idx) ~count:recv_cnt comm dt into ~src:dst ~tag);
        match req with Some req -> ignore (Request.wait req) | None -> ()
      in
      (* Reduce-scatter by recursive halving. *)
      let send_idx = ref 0 and recv_idx = ref 0 and last_idx = ref pof2 in
      let mask = ref 1 in
      while !mask < pof2 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let half = pof2 / (!mask * 2) in
        let send_cnt, recv_cnt =
          if newrank < newdst then begin
            send_idx := !recv_idx + half;
            (sum_range !send_idx !last_idx, sum_range !recv_idx !send_idx)
          end
          else begin
            recv_idx := !send_idx + half;
            (sum_range !send_idx !recv_idx, sum_range !recv_idx !last_idx)
          end
        in
        exchange ~tag:tag_rs ~send_idx:!send_idx ~send_cnt ~recv_idx:!recv_idx ~recv_cnt ~dst
          ~into:tmp;
        if recv_cnt > 0 then begin
          (* fold the received segment into the kept one *)
          let off = disps.(!recv_idx) in
          let acc = Array.sub recvbuf off recv_cnt and inc = Array.sub tmp off recv_cnt in
          combine comm op acc inc recv_cnt ~received_left:(newdst < newrank);
          Array.blit acc 0 recvbuf off recv_cnt
        end;
        send_idx := !recv_idx;
        mask := !mask lsl 1;
        if !mask < pof2 then last_idx := !recv_idx + (pof2 / !mask)
      done;
      (* Allgather by recursive doubling. *)
      mask := pof2 asr 1;
      while !mask > 0 do
        let newdst = newrank lxor !mask in
        let dst = real_of_new ~rem newdst in
        let half = pof2 / (!mask * 2) in
        let send_cnt, recv_cnt =
          if newrank < newdst then begin
            if !mask <> pof2 / 2 then last_idx := !last_idx + half;
            recv_idx := !send_idx + half;
            (sum_range !send_idx !recv_idx, sum_range !recv_idx !last_idx)
          end
          else begin
            recv_idx := !send_idx - half;
            (sum_range !send_idx !last_idx, sum_range !recv_idx !send_idx)
          end
        in
        exchange ~tag:tag_ag ~send_idx:!send_idx ~send_cnt ~recv_idx:!recv_idx ~recv_cnt ~dst
          ~into:recvbuf;
        if newrank > newdst then send_idx := !recv_idx;
        mask := !mask asr 1
      done
    end;
    unfold_from_pow2 comm dt ~recvbuf ~count ~rem ~tag_fold
  end

(* Ring allreduce: reduce-scatter around the ring (p-1 steps), then a ring
   allgather of the reduced blocks.  Linear startups, optimal volume. *)
let allreduce_ring comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_rs ~tag_ag =
  let p = Comm.size comm and r = Comm.rank comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let cnts = Array.init p (fun i -> (count / p) + if i < count mod p then 1 else 0) in
    let disps = Array.make p 0 in
    for i = 1 to p - 1 do
      disps.(i) <- disps.(i - 1) + cnts.(i - 1)
    done;
    let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
    let step_exchange ~tag ~sb ~rb ~into ~fold =
      let req =
        if cnts.(sb) > 0 then
          Some (P2p.isend ~ctx:Internal ~pos:disps.(sb) ~count:cnts.(sb) comm dt recvbuf ~dst ~tag)
        else None
      in
      if cnts.(rb) > 0 then begin
        ignore (P2p.recv ~ctx:Internal ~pos:disps.(rb) ~count:cnts.(rb) comm dt into ~src ~tag);
        if fold then begin
          let acc = Array.sub recvbuf disps.(rb) cnts.(rb)
          and inc = Array.sub tmp disps.(rb) cnts.(rb) in
          (* the incoming partial sum starts at the block's owner: left *)
          combine comm op acc inc cnts.(rb) ~received_left:true;
          Array.blit acc 0 recvbuf disps.(rb) cnts.(rb)
        end
      end;
      match req with Some req -> ignore (Request.wait req) | None -> ()
    in
    (* Reduce-scatter: after step s rank r has accumulated s+1 inputs into
       block (r - s); rank r ends owning block (r + 1) mod p. *)
    for s = 1 to p - 1 do
      let sb = (r - s + 1 + p) mod p and rb = (r - s + p) mod p in
      step_exchange ~tag:tag_rs ~sb ~rb ~into:tmp ~fold:true
    done;
    (* Allgather: circulate the reduced blocks. *)
    for s = 0 to p - 2 do
      let sb = (r + 1 - s + (2 * p)) mod p and rb = (r - s + p) mod p in
      step_exchange ~tag:tag_ag ~sb ~rb ~into:recvbuf ~fold:false
    done
  end

(* ------------------------------------------------------------------ *)
(* Allgather.                                                          *)
(* ------------------------------------------------------------------ *)

(* Copy the caller's block into place (shared by the p = 1 fast path and
   the ring/recursive-doubling seeds). *)
let seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block =
  let dst_pos = rpos + block in
  if my_block_buf != recvbuf || my_block_pos <> dst_pos then
    Array.blit my_block_buf my_block_pos recvbuf dst_pos count

(* Bruck's allgather: logarithmic number of rounds for arbitrary p. *)
let allgather_bruck comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    if p = 1 then seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:0
    else begin
      let temp = Array.make (p * count) my_block_buf.(my_block_pos) in
      Array.blit my_block_buf my_block_pos temp 0 count;
      let m = ref 1 in
      while !m < p do
        let s = min !m (p - !m) in
        let dst = (r - !m + p) mod p and src = (r + !m) mod p in
        let req = P2p.isend ~ctx:Internal ~count:(s * count) comm dt temp ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~pos:(!m * count) ~count:(s * count) comm dt temp ~src ~tag);
        ignore (Request.wait req);
        m := !m + s
      done;
      (* Undo the rotation: temp block i holds rank (r+i) mod p's data. *)
      for i = 0 to p - 1 do
        Array.blit temp (i * count) recvbuf (rpos + (((r + i) mod p) * count)) count
      done
    end
  end

(* Ring allgather: p-1 neighbour steps, each forwarding the block received
   in the previous step. *)
let allgather_ring comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:(r * count);
    if p > 1 then begin
      let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
      for step = 1 to p - 1 do
        let sb = (r - step + 1 + p) mod p and rb = (r - step + p) mod p in
        let req =
          P2p.isend ~ctx:Internal ~pos:(rpos + (sb * count)) ~count comm dt recvbuf ~dst ~tag
        in
        ignore (P2p.recv ~ctx:Internal ~pos:(rpos + (rb * count)) ~count comm dt recvbuf ~src ~tag);
        ignore (Request.wait req)
      done
    end
  end

(* Recursive doubling (power-of-two p): round k swaps the 2^k blocks held
   with the partner rank lxor 2^k; ranges stay aligned and contiguous. *)
let allgather_recursive_doubling comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if p land (p - 1) <> 0 then
    Errors.usage "allgather_recursive_doubling requires a power-of-two communicator (p = %d)" p;
  if count > 0 then begin
    seed_own_block recvbuf rpos count ~my_block_pos ~my_block_buf ~block:(r * count);
    let mask = ref 1 in
    while !mask < p do
      let partner = r lxor !mask in
      let my_base = r land lnot (!mask - 1) and partner_base = partner land lnot (!mask - 1) in
      let req =
        P2p.isend ~ctx:Internal ~pos:(rpos + (my_base * count)) ~count:(!mask * count) comm dt
          recvbuf ~dst:partner ~tag
      in
      ignore
        (P2p.recv ~ctx:Internal ~pos:(rpos + (partner_base * count)) ~count:(!mask * count) comm dt
           recvbuf ~src:partner ~tag);
      ignore (Request.wait req);
      mask := !mask lsl 1
    done
  end

(* ------------------------------------------------------------------ *)
(* Alltoall.                                                           *)
(* ------------------------------------------------------------------ *)

(* Irregular exchanges post every request up front and wait for all of
   them (the linear algorithm real implementations use): latency is hidden
   by overlap, but each of the p-1 peers still costs a message start-up —
   including zero-count pairs, which is exactly why Alltoall(v) has
   Omega(p) complexity per call (paper Sec. V-A). *)
let post_all_exchange comm dt ~tag ~scount_of ~spos_of ~rcount_of ~rpos_of ~sendbuf ~recvbuf =
  let p = Comm.size comm and r = Comm.rank comm in
  Array.blit sendbuf (spos_of r) recvbuf (rpos_of r) (scount_of r);
  let recv_reqs =
    List.init (p - 1) (fun i ->
        let src = (r - 1 - i + p) mod p in
        P2p.irecv ~ctx:Internal ~pos:(rpos_of src) ~count:(rcount_of src) comm dt recvbuf ~src ~tag)
  in
  let send_reqs =
    List.init (p - 1) (fun i ->
        let dst = (r + 1 + i) mod p in
        P2p.isend ~ctx:Internal ~pos:(spos_of dst) ~count:(scount_of dst) comm dt sendbuf ~dst ~tag)
  in
  ignore (Request.wait_all recv_reqs);
  ignore (Request.wait_all send_reqs)

let alltoall_pairwise comm dt ~sendbuf ~recvbuf ~count ~tag =
  post_all_exchange comm dt ~tag
    ~scount_of:(fun _ -> count)
    ~spos_of:(fun d -> d * count)
    ~rcount_of:(fun _ -> count)
    ~rpos_of:(fun s -> s * count)
    ~sendbuf ~recvbuf

(* Bruck's alltoall: rotate locally, then in round k ship every block whose
   index has bit k set to rank r + 2^k (aggregated into one message), and
   finally undo the rotation.  ceil(log2 p) startups instead of p - 1. *)
let alltoall_bruck comm dt ~sendbuf ~recvbuf ~count ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    if p = 1 then Array.blit sendbuf 0 recvbuf 0 count
    else begin
      let temp = Array.make (p * count) sendbuf.(0) in
      (* Phase 1: temp block i = my block for destination (r + i) mod p. *)
      for i = 0 to p - 1 do
        Array.blit sendbuf (((r + i) mod p) * count) temp (i * count) count
      done;
      let max_sel = (p + 1) / 2 in
      let cbuf = Array.make (max_sel * count) temp.(0) in
      let rbuf = Array.make (max_sel * count) temp.(0) in
      let pof = ref 1 in
      while !pof < p do
        let dst = (r + !pof) mod p and src = (r - !pof + p) mod p in
        let nsel = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then begin
            Array.blit temp (i * count) cbuf (!nsel * count) count;
            incr nsel
          end
        done;
        let req = P2p.isend ~ctx:Internal ~count:(!nsel * count) comm dt cbuf ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~count:(!nsel * count) comm dt rbuf ~src ~tag);
        ignore (Request.wait req);
        let k = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then begin
            Array.blit rbuf (!k * count) temp (i * count) count;
            incr k
          end
        done;
        pof := !pof lsl 1
      done;
      (* Phase 3: temp block i now holds the data from rank (r - i + p) mod
         p; place it at that source's slot. *)
      for i = 0 to p - 1 do
        Array.blit temp (i * count) recvbuf (((r - i + p) mod p) * count) count
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Hierarchical (topology-aware) bodies.                               *)
(*                                                                     *)
(* Each takes [nodes]: the node id of every communicator rank (all     *)
(* ranks compute it identically from the communicator's group and the  *)
(* world's network model), from which every rank derives the same      *)
(* node-membership structure without communicating: a node's members   *)
(* are its comm ranks in ascending order, its leader the lowest.       *)
(* ------------------------------------------------------------------ *)

let members_of_node nodes nd =
  let acc = ref [] in
  for i = Array.length nodes - 1 downto 0 do
    if nodes.(i) = nd then acc := i :: !acc
  done;
  Array.of_list !acc

(* Distinct node ids in ascending order. *)
let distinct_nodes nodes =
  let sorted = Array.copy nodes in
  Array.sort compare sorted;
  let acc = ref [] in
  Array.iter (fun nd -> match !acc with x :: _ when x = nd -> () | _ -> acc := nd :: !acc) sorted;
  Array.of_list (List.rev !acc)

let index_in a x =
  let n = Array.length a in
  let rec go i = if i >= n then -1 else if a.(i) = x then i else go (i + 1) in
  go 0

(* Binomial broadcast over [members] (comm ranks), rooted at members.(0);
   [me] is the caller's index in [members]. *)
let bcast_binomial_over comm dt buf pos count ~members ~me ~tag =
  let p = Array.length members in
  if p > 1 && count > 0 then begin
    let mask = ref 1 in
    while !mask < p && me land !mask = 0 do
      mask := !mask lsl 1
    done;
    if me <> 0 then
      ignore (P2p.recv ~ctx:Internal ~pos ~count comm dt buf ~src:members.(me - !mask) ~tag);
    mask := !mask lsr 1;
    while !mask > 0 do
      if me + !mask < p then
        P2p.send ~ctx:Internal ~pos ~count comm dt buf ~dst:members.(me + !mask) ~tag;
      mask := !mask lsr 1
    done
  end

(* Binomial reduction over [members] into [acc]; the result lands at
   members.(0).  Receives always combine a higher-ranked contribution on
   the right, matching [reduce_binomial]. *)
let reduce_binomial_over comm dt op ~acc ~tmp ~count ~members ~me ~tag =
  let p = Array.length members in
  if p > 1 && count > 0 then begin
    let mask = ref 1 in
    let running = ref true in
    while !running && !mask < p do
      if me land !mask = 0 then begin
        let src = me lor !mask in
        if src < p then begin
          ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:members.(src) ~tag);
          combine comm op acc tmp count ~received_left:false
        end
      end
      else begin
        P2p.send ~ctx:Internal ~count comm dt acc ~dst:members.(me lxor !mask) ~tag;
        running := false
      end;
      mask := !mask lsl 1
    done
  end

(* Recursive-doubling allreduce over [members] (the inter-leader phase of
   the node-leader allreduce), with the usual non-power-of-two fold. *)
let allreduce_rd_over comm dt op ~recvbuf ~tmp ~count ~members ~me ~tag_fold ~tag =
  let p = Array.length members in
  if p > 1 && count > 0 then begin
    let pof2 = largest_pow2 p in
    let rem = p - pof2 in
    let newrank =
      if me < 2 * rem then
        if me land 1 = 0 then begin
          P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:members.(me + 1) ~tag:tag_fold;
          -1
        end
        else begin
          ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:members.(me - 1) ~tag:tag_fold);
          combine comm op recvbuf tmp count ~received_left:true;
          me asr 1
        end
      else me - rem
    in
    if newrank >= 0 then begin
      let mask = ref 1 in
      while !mask < pof2 do
        let newdst = newrank lxor !mask in
        let dst = members.(real_of_new ~rem newdst) in
        let req = P2p.isend ~ctx:Internal ~count comm dt recvbuf ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src:dst ~tag);
        ignore (Request.wait req);
        combine comm op recvbuf tmp count ~received_left:(newdst < newrank);
        mask := !mask lsl 1
      done
    end;
    if me < 2 * rem then
      if me land 1 = 1 then
        P2p.send ~ctx:Internal ~count comm dt recvbuf ~dst:members.(me - 1) ~tag:tag_fold
      else ignore (P2p.recv ~ctx:Internal ~count comm dt recvbuf ~src:members.(me + 1) ~tag:tag_fold)
  end

(* Node-leader broadcast: binomial over one representative per node (the
   root itself for the root's node, the lowest rank elsewhere), then
   binomial within each node from its representative.  The root's node
   representative leads the inter phase, so no extra hop to a leader. *)
let bcast_node_leader comm dt buf pos count ~root ~nodes ~tag ~tag2 =
  let r = Comm.rank comm in
  if Comm.size comm > 1 && count > 0 then begin
    let root_node = nodes.(root) in
    let rep_of nd = if nd = root_node then root else (members_of_node nodes nd).(0) in
    let all_nodes = distinct_nodes nodes in
    let reps = Array.map rep_of all_nodes in
    Array.sort compare reps;
    (* Rotate the root's representative (the root itself) to the front. *)
    let ri = index_in reps root in
    let leaders = Array.init (Array.length reps) (fun i -> reps.((i + ri) mod Array.length reps)) in
    let li = index_in leaders r in
    if li >= 0 then bcast_binomial_over comm dt buf pos count ~members:leaders ~me:li ~tag;
    (* Intra-node phase, rooted at this node's representative. *)
    let my = members_of_node nodes nodes.(r) in
    let rep = rep_of nodes.(r) in
    let intra = Array.of_list (rep :: List.filter (fun m -> m <> rep) (Array.to_list my)) in
    bcast_binomial_over comm dt buf pos count ~members:intra ~me:(index_in intra r) ~tag:tag2
  end

(* Node-leader allreduce: binomial reduce to each node's leader, recursive
   doubling across leaders, binomial broadcast back down. *)
let allreduce_node_leader comm dt op ~sendbuf ~pos ~recvbuf ~count ~nodes ~tag_up ~tag_fold ~tag_rd
    ~tag_down =
  let r = Comm.rank comm in
  Array.blit sendbuf pos recvbuf 0 count;
  if Comm.size comm > 1 && count > 0 then begin
    let tmp = Array.sub sendbuf pos count in
    let my = members_of_node nodes nodes.(r) in
    let me = index_in my r in
    reduce_binomial_over comm dt op ~acc:recvbuf ~tmp ~count ~members:my ~me ~tag:tag_up;
    let leaders = Array.map (fun nd -> (members_of_node nodes nd).(0)) (distinct_nodes nodes) in
    Array.sort compare leaders;
    let li = index_in leaders r in
    if li >= 0 then
      allreduce_rd_over comm dt op ~recvbuf ~tmp ~count ~members:leaders ~me:li ~tag_fold
        ~tag:tag_rd;
    bcast_binomial_over comm dt recvbuf 0 count ~members:my ~me ~tag:tag_down
  end

(* SMP-aware alltoall: blocks for on-node peers go directly; blocks for
   remote nodes are gathered at the local leader, exchanged leader-to-
   leader as one bundle per node pair, and scattered on arrival.  Trades
   memcpy and leader serialization for a factor-node_size reduction in
   wire startups.  All bundle layouts are canonical (nodes ascending,
   members ascending), so every rank computes every offset locally. *)
let alltoall_smp comm dt ~sendbuf ~recvbuf ~count ~nodes ~tag_local ~tag_up ~tag_net ~tag_down =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    let my_node = nodes.(r) in
    let my = members_of_node nodes my_node in
    let m_a = Array.length my in
    let me = index_in my r in
    let leader = my.(0) in
    let all_nodes = distinct_nodes nodes in
    let remote_nodes = Array.of_list (List.filter (fun nd -> nd <> my_node) (Array.to_list all_nodes)) in
    let remote_members = Array.map (members_of_node nodes) remote_nodes in
    let n_remote = p - m_a in
    (* Offset of node index [bi]'s segment in a (p - m_a)-block remote
       bundle laid out node-by-node. *)
    let seg_off = Array.make (Array.length remote_nodes + 1) 0 in
    Array.iteri
      (fun bi ms -> seg_off.(bi + 1) <- seg_off.(bi) + Array.length ms)
      remote_members;
    (* Intra-node direct exchange (own block included). *)
    Array.blit sendbuf (r * count) recvbuf (r * count) count;
    let local_recv =
      List.filter_map
        (fun q ->
          if q = r then None
          else
            Some (P2p.irecv ~ctx:Internal ~pos:(q * count) ~count comm dt recvbuf ~src:q ~tag:tag_local))
        (Array.to_list my)
    in
    let local_send =
      List.filter_map
        (fun q ->
          if q = r then None
          else
            Some (P2p.isend ~ctx:Internal ~pos:(q * count) ~count comm dt sendbuf ~dst:q ~tag:tag_local))
        (Array.to_list my)
    in
    if Array.length remote_nodes > 0 then begin
      (* Pack my remote-destined blocks: nodes ascending, members ascending. *)
      let up = Array.make (max 1 (n_remote * count)) sendbuf.(0) in
      Array.iteri
        (fun bi ms ->
          Array.iteri
            (fun j q -> Array.blit sendbuf (q * count) up ((seg_off.(bi) + j) * count) count)
            ms)
        remote_members;
      if r <> leader then begin
        (* Ship them up, then receive my slice of every arriving bundle. *)
        P2p.send ~ctx:Internal ~count:(n_remote * count) comm dt up ~dst:leader ~tag:tag_up;
        let down = Array.make (n_remote * count) sendbuf.(0) in
        ignore (P2p.recv ~ctx:Internal ~count:(n_remote * count) comm dt down ~src:leader ~tag:tag_down);
        Array.iteri
          (fun bi ms ->
            Array.iteri
              (fun j q -> Array.blit down ((seg_off.(bi) + j) * count) recvbuf (q * count) count)
              ms)
          remote_members
      end
      else begin
        (* Gather the local members' remote blocks: lbuf.(li) is member
           li's bundle (leader's own is [up]). *)
        let lbuf = Array.make m_a up in
        for li = 1 to m_a - 1 do
          let b = Array.make (n_remote * count) sendbuf.(0) in
          ignore (P2p.recv ~ctx:Internal ~count:(n_remote * count) comm dt b ~src:my.(li) ~tag:tag_up);
          lbuf.(li) <- b
        done;
        (* One bundle per remote node: src members ascending, then dst
           members ascending.  Post receives first, then sends (isend
           copies eagerly, so one scratch buffer suffices). *)
        let arrivals = Array.make (Array.length remote_nodes) [||] in
        let net_recv =
          List.mapi
            (fun bi ms ->
              let mb = Array.length ms in
              let b = Array.make (mb * m_a * count) sendbuf.(0) in
              arrivals.(bi) <- b;
              P2p.irecv ~ctx:Internal ~count:(mb * m_a * count) comm dt b ~src:ms.(0) ~tag:tag_net)
            (Array.to_list remote_members)
        in
        let scratch = Array.make (Array.length remote_nodes) [||] in
        Array.iteri
          (fun bi ms ->
            let mb = Array.length ms in
            let b = Array.make (m_a * mb * count) sendbuf.(0) in
            for li = 0 to m_a - 1 do
              Array.blit lbuf.(li) (seg_off.(bi) * count) b (li * mb * count) (mb * count)
            done;
            scratch.(bi) <- b)
          remote_members;
        let net_send =
          List.mapi
            (fun bi ms ->
              let mb = Array.length ms in
              P2p.isend ~ctx:Internal ~count:(m_a * mb * count) comm dt scratch.(bi) ~dst:ms.(0)
                ~tag:tag_net)
            (Array.to_list remote_members)
        in
        ignore (Request.wait_all net_recv);
        ignore (Request.wait_all net_send);
        (* Scatter: member j's slice is, for each remote node, every source
           member's block destined to j.  Leader keeps its own slice. *)
        let down = Array.make (max 1 (n_remote * count)) sendbuf.(0) in
        for j = m_a - 1 downto 0 do
          Array.iteri
            (fun bi ms ->
              let mb = Array.length ms in
              for i = 0 to mb - 1 do
                Array.blit arrivals.(bi) (((i * m_a) + j) * count) down ((seg_off.(bi) + i) * count)
                  count
              done)
            remote_members;
          if j = me then
            Array.iteri
              (fun bi ms ->
                Array.iteri
                  (fun i q -> Array.blit down ((seg_off.(bi) + i) * count) recvbuf (q * count) count)
                  ms)
              remote_members
          else P2p.send ~ctx:Internal ~count:(n_remote * count) comm dt down ~dst:my.(j) ~tag:tag_down
        done
      end
    end;
    ignore (Request.wait_all local_recv);
    ignore (Request.wait_all local_send)
  end

(* Grid ("hypergrid") alltoall: route every block through two coordinate-
   fixing phases over a near-square rows x cols grid (the paper's grid
   all-to-all, Fig. 9).  Phase 1 bundles blocks by destination column
   within each row; phase 2 delivers them within each column.  O(sqrt p)
   startups per rank instead of p - 1. *)
let alltoall_hypergrid comm dt ~sendbuf ~recvbuf ~count ~tag ~tag2 =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    let rows, cols = Coll_algos.Cost.grid_dims p in
    if p = 1 || rows * cols <> p then begin
      (* Degenerate grid (p prime collapses to p x 1): fall back to the
         direct exchange rather than simulate a pointless relabelling. *)
      if cols = 1 || rows = 1 then
        post_all_exchange comm dt ~tag
          ~scount_of:(fun _ -> count)
          ~spos_of:(fun d -> d * count)
          ~rcount_of:(fun _ -> count)
          ~rpos_of:(fun s -> s * count)
          ~sendbuf ~recvbuf
      else assert false
    end
    else begin
      let x = r / cols and y = r mod cols in
      (* temp is laid out [source column in my row][destination row]. *)
      let temp = Array.make (p * count) sendbuf.(0) in
      let phase1_recv =
        List.filter_map
          (fun yq ->
            if yq = y then None
            else
              Some
                (P2p.irecv ~ctx:Internal ~pos:(yq * rows * count) ~count:(rows * count) comm dt temp
                   ~src:((x * cols) + yq) ~tag))
          (List.init cols Fun.id)
      in
      for xd = 0 to rows - 1 do
        Array.blit sendbuf (((xd * cols) + y) * count) temp (((y * rows) + xd) * count) count
      done;
      let pack = Array.make (max rows cols * count) sendbuf.(0) in
      let phase1_send =
        List.filter_map
          (fun yd ->
            if yd = y then None
            else begin
              for xd = 0 to rows - 1 do
                Array.blit sendbuf (((xd * cols) + yd) * count) pack (xd * count) count
              done;
              Some
                (P2p.isend ~ctx:Internal ~count:(rows * count) comm dt pack ~dst:((x * cols) + yd)
                   ~tag)
            end)
          (List.init cols Fun.id)
      in
      ignore (Request.wait_all phase1_recv);
      ignore (Request.wait_all phase1_send);
      let phase2_recv =
        List.filter_map
          (fun xs ->
            if xs = x then None
            else
              Some
                (P2p.irecv ~ctx:Internal ~pos:(xs * cols * count) ~count:(cols * count) comm dt
                   recvbuf ~src:((xs * cols) + y) ~tag:tag2))
          (List.init rows Fun.id)
      in
      for ys = 0 to cols - 1 do
        Array.blit temp (((ys * rows) + x) * count) recvbuf (((x * cols) + ys) * count) count
      done;
      let phase2_send =
        List.filter_map
          (fun xd ->
            if xd = x then None
            else begin
              for ys = 0 to cols - 1 do
                Array.blit temp (((ys * rows) + xd) * count) pack (ys * count) count
              done;
              Some
                (P2p.isend ~ctx:Internal ~count:(cols * count) comm dt pack ~dst:((xd * cols) + y)
                   ~tag:tag2)
            end)
          (List.init rows Fun.id)
      in
      ignore (Request.wait_all phase2_recv);
      ignore (Request.wait_all phase2_send)
    end
  end
