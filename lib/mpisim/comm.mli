(** Communicator handles.

    A [Comm.t] is one rank's view of a communicator: the shared state (group
    and revocation flag) plus this rank's position.  Like KaMPIng's
    [Communicator] class it is a thin, copyable handle; creation and
    destruction need no collective cleanup because the simulator garbage
    collects shared state. *)

type t

(** [make world shared ~rank] wraps shared communicator state for the member
    with communicator rank [rank]. *)
val make : World.t -> World.comm_shared -> rank:int -> t

(** [world comm] is the machine this communicator lives on. *)
val world : t -> World.t

(** [shared comm] is the communicator's shared state. *)
val shared : t -> World.comm_shared

(** [rank comm] is the calling rank's position in the communicator. *)
val rank : t -> int

(** [size comm] is the number of members. *)
val size : t -> int

(** [id comm] is the communicator id (unique per world). *)
val id : t -> int

(** [world_rank_of comm r] translates a communicator rank to a world rank.
    @raise Errors.Usage_error if [r] is out of range. *)
val world_rank_of : t -> int -> int

(** [group comm] is the comm-rank to world-rank mapping (do not mutate). *)
val group : t -> int array

(** [node_of_rank comm r] is the shared-memory node hosting communicator
    rank [r] (see {!Simnet.Netmodel.node_of}; on a flat fabric every rank
    is its own node).
    @raise Errors.Usage_error if [r] is out of range. *)
val node_of_rank : t -> int -> int

(** [is_revoked comm] is the ULFM revocation flag. *)
val is_revoked : t -> bool

(** [check_active comm] raises {!Errors.Comm_revoked} if the communicator
    was revoked — called on entry of every operation. *)
val check_active : t -> unit

(** [next_collective_tag comm] allocates the internal tag for the next
    collective operation issued by this rank on this communicator.  MPI
    requires all ranks to issue collectives in the same order, so rank-local
    counters agree and successive collectives never cross-match. *)
val next_collective_tag : t -> int

(** [next_shrink_epoch comm] numbers this rank's shrink calls (used to agree
    on the shrunk communicator's identity). *)
val next_shrink_epoch : t -> int

(** [next_agree_epoch comm] numbers this rank's agreement calls. *)
val next_agree_epoch : t -> int

(** [now comm] is the simulated time (convenience for applications timing
    phases). *)
val now : t -> float

(** [compute comm seconds] charges [seconds] of local computation to the
    calling fiber (advances its simulated clock). *)
val compute : t -> float -> unit
