module Engine = Simnet.Engine

type phase = Inactive | Active | Freed

type t = {
  engine : Engine.t;
  op : string;
  partitions : int;
  req : Request.t;
  mutable phase : phase;
  mutable starts : int;
  start_impl : t -> unit;
  around_wait : t -> (unit -> Request.status) -> Request.status;
  pready_impl : (t -> int -> unit) option;
  parrived_impl : (t -> int -> bool) option;
  cancel_impl : (t -> unit) option;
  mutable on_free : (unit -> unit) option;
}

let make engine ~op ?(partitions = 1) ?pready ?parrived ?cancel
    ?(around_wait = fun _ f -> f ()) start =
  if partitions <= 0 then
    Errors.usage "%s: partitions %d must be positive" op partitions;
  {
    engine;
    op;
    partitions;
    (* the one request reused across rounds; born inactive (= complete) *)
    req = Request.completed_now engine Request.empty_status;
    phase = Inactive;
    starts = 0;
    start_impl = start;
    around_wait;
    pready_impl = pready;
    parrived_impl = parrived;
    cancel_impl = cancel;
    on_free = None;
  }

let engine h = h.engine
let op h = h.op
let partitions h = h.partitions
let request h = h.req
let starts h = h.starts
let is_active h = h.phase = Active
let is_freed h = h.phase = Freed
let set_on_free h f = h.on_free <- Some f

let start h =
  (match h.phase with
  | Freed -> Errors.usage "%s: started after MPI_Request_free" h.op
  | Active -> Errors.usage "%s: started while still active" h.op
  | Inactive -> ());
  h.starts <- h.starts + 1;
  Request.reactivate h.req;
  h.phase <- Active;
  h.start_impl h

let startall hs = List.iter start hs

let wait h =
  match h.phase with
  | Freed -> Errors.usage "%s: wait after MPI_Request_free" h.op
  | Inactive -> Request.empty_status (* waiting on an inactive request *)
  | Active ->
      (* the handle goes back to inactive even when the round failed
         (ULFM abort): the program may still free it *)
      Fun.protect
        ~finally:(fun () -> h.phase <- Inactive)
        (fun () -> h.around_wait h (fun () -> Request.wait h.req))

let test h =
  match h.phase with
  | Freed -> Errors.usage "%s: test after MPI_Request_free" h.op
  | Inactive -> Some Request.empty_status
  | Active -> (
      match Request.test h.req with
      | Some status ->
          h.phase <- Inactive;
          Some status
      | None -> None
      | exception e ->
          h.phase <- Inactive;
          raise e)

let cancel h =
  match h.phase with
  | Freed -> Errors.usage "%s: cancel after MPI_Request_free" h.op
  | Inactive -> ()
  | Active -> (
      match h.cancel_impl with
      | None -> Errors.usage "%s: operation is not cancellable" h.op
      | Some c ->
          c h;
          h.phase <- Inactive)

let free h =
  match h.phase with
  | Freed -> Errors.usage "%s: double MPI_Request_free" h.op
  | Active -> Errors.usage "%s: freed while still active" h.op
  | Inactive ->
      h.phase <- Freed;
      (match h.on_free with Some f -> f () | None -> ());
      h.on_free <- None

let check_partition h i =
  if i < 0 || i >= h.partitions then
    Errors.usage "%s: partition %d out of range [0, %d)" h.op i h.partitions

let pready h i =
  check_partition h i;
  match h.phase with
  | Freed -> Errors.usage "%s: pready after MPI_Request_free" h.op
  | Inactive -> Errors.usage "%s: pready on an inactive request" h.op
  | Active -> (
      match h.pready_impl with
      | None -> Errors.usage "%s: pready on a non-partitioned operation" h.op
      | Some f -> f h i)

let parrived h i =
  check_partition h i;
  match h.phase with
  | Freed -> Errors.usage "%s: parrived after MPI_Request_free" h.op
  | Inactive | Active -> (
      match h.parrived_impl with
      | None -> Errors.usage "%s: parrived on a non-partitioned operation" h.op
      | Some f -> f h i)
