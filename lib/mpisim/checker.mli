(** MUST-style correctness checking inside the simulator.

    Because the discrete-event simulator observes every primitive on every
    rank, it can host the checks that real MPI users need an external tool
    (MUST, Marmot) or KaMPIng's communication-level assertions for:

    - {b deadlock}: when the simulation quiesces with blocked fibers the
      run terminates with a structured report of the wait-for cycle and
      each rank's pending operation, instead of an opaque hang;
    - {b collective ordering}: the N-th collective issued on a communicator
      must agree across ranks on operation, root, count and datatype (the
      paper's class of assertions that require communication);
    - {b resource leaks} at finalize: unwaited requests, never-matched
      sends, unfreed windows;
    - {b matching errors}: truncation and datatype mismatches are recorded
      as structured diagnostics at p2p match time (the exception still
      propagates to the caller as before).

    Checks are grouped in levels mirroring the paper's assertion taxonomy;
    at {!Off} every hook returns immediately, so fully parameterized calls
    keep their zero-overhead profile (no extra MPI calls, no extra
    simulated events at any level — the checker is an observer). *)

(** Checking levels, cumulative from top to bottom. *)
type level =
  | Off  (** no checking — the zero-overhead production mode *)
  | Light  (** record match-time errors (truncation, datatype mismatch) *)
  | Heavy
      (** plus deadlock diagnosis at quiesce and resource-leak checks at
          finalize *)
  | Communication
      (** plus cross-rank collective-ordering agreement — the checks that
          would require extra communication in a real MPI *)

(** [set_level l] / [level ()] configure the global checker level.  The
    default is [Light], or the value of the [MPISIM_CHECK] environment
    variable ([off]/[light]/[heavy]/[communication]) when set. *)
val set_level : level -> unit

val level : unit -> level

(** [enabled l] is true when the current level includes [l]. *)
val enabled : level -> bool

(** [with_level l f] runs [f] with the level temporarily set to [l]. *)
val with_level : level -> (unit -> 'a) -> 'a

(** [level_of_string s] parses ["off"], ["light"], ["heavy"],
    ["communication"]. *)
val level_of_string : string -> level option

(** {1 Diagnostics} *)

(** The signature of one collective call, as agreed across ranks.  A
    [coll_count] of [-1] and a [coll_dt] of [""] mean "not checked" (used
    by the v-variants whose counts legitimately differ per rank). *)
type coll_sig = { coll_op : string; coll_root : int; coll_count : int; coll_dt : string }

type detail =
  | Deadlock_cycle of {
      cycle : int list;  (** one wait-for cycle in world ranks, if any *)
      blocked : (int * string) list;  (** every blocked rank and its pending operation *)
    }
  | Collective_mismatch of {
      index : int;  (** position in the communicator's collective sequence *)
      field : string;  (** first disagreeing field: "operation", "root", "count" or "datatype" *)
      expected : coll_sig;  (** what the first rank to reach [index] called *)
      got : coll_sig;
    }
  | Truncation of { sent : int; capacity : int }
  | Datatype_mismatch of { sent : string; expected : string }
  | Request_leak  (** a request whose completion the program never observed *)
  | Persistent_leak of { starts : int }
      (** a persistent request never released with [MPI_Request_free];
          [starts] is how many rounds it ran *)
  | Unmatched_send of { dst : int; tag : int; count : int }
  | Window_leak  (** an RMA window never released with [Win.free] *)

(** One structured finding.  [rank] is a world rank ([-1] when the finding
    is not attributable to one rank), [comm] a communicator id ([-1] when
    not applicable), [op] the MPI operation involved and [location] the
    checking site ([p2p-match], [collective], [quiesce] or [finalize]). *)
type diagnostic = { rank : int; comm : int; op : string; location : string; detail : detail }

(** Raised inside the offending rank when a communication-level check fails
    (currently: collective-ordering disagreement). *)
exception Violation of diagnostic

val to_string : diagnostic -> string
val pp : Format.formatter -> diagnostic -> unit

(** {1 Per-world state and hooks}

    One [state] lives in each {!World.t}; the hooks below are called by the
    p2p, collective, request and window layers.  They are cheap no-ops
    below their gating level. *)

type state

val create : unit -> state

(** [diagnostics st] is every finding recorded so far, in order. *)
val diagnostics : state -> diagnostic list

(** [record_collective st ~rank ~comm ~op ~root ~count ~datatype] logs the
    calling rank's next collective on communicator [comm] and verifies it
    against the other ranks' sequences.  Pass [root = -1] for non-rooted
    operations, [count = -1] / [datatype = ""] to skip those fields.
    Active at {!Communication}.
    @raise Violation on disagreement (after recording the diagnostic). *)
val record_collective :
  state -> rank:int -> comm:int -> op:string -> root:int -> count:int -> datatype:string -> unit

(** [record_match_error st ~rank ~comm ~op ~src ~tag e] records a
    truncation or datatype mismatch detected while matching a message.
    Active at {!Light}. *)
val record_match_error :
  state -> rank:int -> comm:int -> op:string -> src:int -> tag:int -> exn -> unit

(** [track_request st ~rank ~comm ~op ~at req] registers a user-visible
    request for the finalize leak check; [at] is the simulated creation
    time (used to scope the damaged-communicator exemption).  Active at
    {!Heavy}. *)
val track_request : state -> rank:int -> comm:int -> op:string -> at:float -> Request.t -> unit

(** [track_persistent st ~rank ~comm ~op ~at ~freed ~starts] registers a
    persistent handle for the finalize leak scan.  The closures read the
    handle's state at finalize time: a handle for which [freed ()] is still
    false — whether parked inactive or abandoned mid-round — is reported as
    a {!Persistent_leak} carrying [starts ()].  Active at {!Heavy}. *)
val track_persistent :
  state ->
  rank:int ->
  comm:int ->
  op:string ->
  at:float ->
  freed:(unit -> bool) ->
  starts:(unit -> int) ->
  unit

(** Handle for one rank's view of an RMA window, used by the leak check. *)
type window_token

(** [track_window st ~rank ~comm] registers a window created by [rank].
    Active at {!Heavy} (below it, the returned token is inert). *)
val track_window : state -> rank:int -> comm:int -> window_token

(** [release_window tok] marks the window freed (called by [Win.free]). *)
val release_window : window_token -> unit

(** [diagnose_deadlock st ~mailboxes ~parked ~rank_alive] builds the
    structured deadlock report from the posted-receive queues and the list
    of parked world ranks, records it, and returns it. *)
val diagnose_deadlock :
  state ->
  mailboxes:Msg.mailbox array ->
  parked:int list ->
  rank_alive:(int -> bool) ->
  diagnostic

(** [finalize st ~mailboxes ~rank_alive ~comm_revoked ~comm_failed_at]
    runs the end-of-run leak checks: unobserved requests, never-matched
    user sends and unfreed windows.  State owned by dead ranks or revoked
    communicators is skipped (ULFM failure injection leaves it behind
    legitimately).  On a {e damaged} communicator — one with a dead
    member ([comm_failed_at], see [World.comm_failed_at]) — only traffic
    already in flight at the failure time is exempt: two live survivors
    may legitimately abandon an exchange (e.g. a buddy checkpoint
    [sendrecv]) when a third member's failure aborts the surrounding
    protocol before revocation, but traffic initiated {e after} the
    failure is still held to the usual rules, so a genuine live-to-live
    leak is reported even when an unrelated member died earlier. *)
val finalize :
  state ->
  mailboxes:Msg.mailbox array ->
  rank_alive:(int -> bool) ->
  comm_revoked:(int -> bool) ->
  comm_failed_at:(int -> float) ->
  unit

(** {1 Cross-world collection}

    [with_collector f] additionally tees every diagnostic recorded in any
    world created while running [f] into a list — the regression sweep uses
    it to assert that whole example programs run clean. *)
val with_collector : (unit -> 'a) -> 'a * diagnostic list
