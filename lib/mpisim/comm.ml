type t = {
  world : World.t;
  shared : World.comm_shared;
  rank : int;
  mutable coll_seq : int;
  mutable shrink_seq : int;
  mutable agree_seq : int;
}

let make world shared ~rank = { world; shared; rank; coll_seq = 0; shrink_seq = 0; agree_seq = 0 }
let world c = c.world
let shared c = c.shared
let rank c = c.rank
let size c = Array.length c.shared.group
let id c = c.shared.cid

let world_rank_of c r =
  if r < 0 || r >= size c then Errors.usage "rank %d out of range for communicator of size %d" r (size c);
  c.shared.group.(r)

let group c = c.shared.group

(* Placement query: the shared-memory node hosting a communicator rank. *)
let node_of_rank c r = Simnet.Netmodel.node_of c.world.World.net (world_rank_of c r)

let is_revoked c = c.shared.revoked
let check_active c = if c.shared.revoked then raise Errors.Comm_revoked

(* Internal tags live below -10; user tags must be >= 0.  The sequence
   wraps far before colliding with the ibarrier tag space (see P2p). *)
let next_collective_tag c =
  c.coll_seq <- c.coll_seq + 1;
  -10 - (c.coll_seq land 0xFFFFF)

let next_shrink_epoch c =
  c.shrink_seq <- c.shrink_seq + 1;
  c.shrink_seq

let next_agree_epoch c =
  c.agree_seq <- c.agree_seq + 1;
  c.agree_seq

let now c = World.now c.world
let compute c seconds = Simnet.Engine.delay c.world.World.engine seconds
