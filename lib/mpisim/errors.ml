exception Usage_error of string
exception Type_mismatch of { sent : string; expected : string }
exception Truncated of { sent : int; capacity : int }
exception Count_overflow of { count : int; extent : int }
exception Process_failed of { world_rank : int }
exception Comm_revoked

let usage fmt = Format.kasprintf (fun s -> raise (Usage_error s)) fmt
