(** Persistent and partitioned operation handles (MPI-4 §3.9, §4).

    A persistent handle is created {e inactive} by an [*_init] call that
    performs all argument validation, datatype commit, and checker
    registration exactly once.  {!start} arms it — reusing one pooled
    {!Request.t} across rounds — and the round completes through the normal
    engine event path; {!wait}/{!test} return it to inactive.  The
    lifecycle state machine:

    {v
        *_init            start              wait / test(Some)
      ──────────▶ Inactive ────▶ Active ──────────▶ Inactive ──▶ ...
                     │                                 │
                     └──────────── free ◀──────────────┘
                                    │
                                    ▼
                                  Freed   (terminal)
    v}

    [start] on an active or freed handle, [free] on an active handle, and
    any use after [free] are usage errors.  Waiting on an inactive handle
    returns {!Request.empty_status} (MPI-4 §3.7.3).

    Partitioned handles ({!pready}/{!parrived}) expose per-partition
    progress on top of the same machine: each partition completes
    independently on the engine's event queue, and the round's request
    completes when every partition has.

    The module is deliberately independent of [Comm]/[World]: the concrete
    operation behaviour is injected as closures by {!P2p} and
    {!Collectives}, which also register the handle with the {!Checker}
    (an inactive handle never freed is a leak). *)

type phase = Inactive | Active | Freed
type t

(** [make engine ~op ?partitions ?pready ?parrived ?cancel ?around_wait
    start] builds an inactive handle.  [start] launches one round (the
    handle it receives is already marked active with its request rearmed);
    [pready]/[parrived] implement partitioned progress; [cancel]
    deactivates a standing receive; [around_wait] wraps the blocking wait
    (tracing spans). *)
val make :
  Simnet.Engine.t ->
  op:string ->
  ?partitions:int ->
  ?pready:(t -> int -> unit) ->
  ?parrived:(t -> int -> bool) ->
  ?cancel:(t -> unit) ->
  ?around_wait:(t -> (unit -> Request.status) -> Request.status) ->
  (t -> unit) ->
  t

val engine : t -> Simnet.Engine.t

(** [op h] is the operation name the handle was created with (errors,
    checker attribution, trace spans). *)
val op : t -> string

(** [partitions h] is the partition count (1 for plain persistent ops). *)
val partitions : t -> int

(** [request h] is the one request object reused across rounds — operation
    implementations complete/abort it; programs use {!wait}/{!test}. *)
val request : t -> Request.t

(** [starts h] counts completed [start] calls — round number, used by
    implementations to guard stale callbacks from earlier rounds. *)
val starts : t -> int

val is_active : t -> bool
val is_freed : t -> bool

(** [set_on_free h f] registers a hook run once when the handle is freed
    (checker bookkeeping). *)
val set_on_free : t -> (unit -> unit) -> unit

(** [start h] arms an inactive handle (MPI_Start). *)
val start : t -> unit

(** [startall hs] arms every handle (MPI_Startall). *)
val startall : t list -> unit

(** [wait h] blocks until the active round completes and returns its
    status, deactivating the handle; on an inactive handle it returns
    {!Request.empty_status} immediately. *)
val wait : t -> Request.status

(** [test h] polls the active round; [Some status] deactivates. *)
val test : t -> Request.status option

(** [cancel h] deactivates a standing receive-like handle whose round will
    never be matched (e.g. shutting down a channel); a usage error on
    non-cancellable operations. *)
val cancel : t -> unit

(** [free h] releases an inactive handle (MPI_Request_free); terminal. *)
val free : t -> unit

(** [pready h i] marks partition [i] of an active partitioned send ready
    for transfer (MPI_Pready). *)
val pready : t -> int -> unit

(** [parrived h i] is true once partition [i] of the current (or just
    completed) round has arrived (MPI_Parrived). *)
val parrived : t -> int -> bool
