(** Non-blocking operation handles.

    A request completes with a {!status} (like [MPI_Status]) or fails with
    an exception (ULFM failures surface here).  [wait] parks the calling
    fiber until completion; [test] polls without blocking. *)

(** Completion information of a receive (senders get a synthetic status). *)
type status = {
  source : int;  (** rank of the peer, in the communicator the call used *)
  tag : int;
  count : int;  (** number of elements actually transferred *)
}

type t

(** [create engine] is a fresh pending request. *)
val create : Simnet.Engine.t -> t

(** [completed_now engine status] is an already-complete request (used for
    self-messages and empty transfers). *)
val completed_now : Simnet.Engine.t -> status -> t

(** The "empty" status (MPI-4 §3.7.3): [source = -1], [tag = -1],
    [count = 0] — what waiting on an inactive persistent request returns. *)
val empty_status : status

(** [reactivate r] rearms a completed (or failed) request back to pending —
    the [MPI_Start] transition of persistent requests, which reuse one
    request object across rounds.  Reactivating a still-pending request is
    a usage error. *)
val reactivate : t -> unit

(** [complete r status] transitions a pending request to complete and wakes
    the waiter, if any.  Idempotence is a usage error. *)
val complete : t -> status -> unit

(** [abort r exn] fails a pending request; [wait]/[test] will re-raise. *)
val abort : t -> exn -> unit

(** [is_complete r] is true once completed (successfully or not).  A [true]
    answer counts as the program observing completion (NBX-style protocols
    poll this instead of waiting), so the checker's leak detection will not
    flag the request. *)
val is_complete : t -> bool

(** [wait r] blocks the calling fiber until completion.
    @raise the request's failure exception if it was aborted. *)
val wait : t -> status

(** [test r] is [Some status] if complete, [None] otherwise.
    @raise the failure exception if the request was aborted. *)
val test : t -> status option

(** [wait_all rs] waits for every request, returning statuses in order. *)
val wait_all : t list -> status list

(** [wait_any rs] blocks until at least one request in the (non-empty) list
    is complete and returns its index and status. *)
val wait_any : t list -> int * status

(** [test_all rs] is [Some statuses] if all complete, else [None]. *)
val test_all : t list -> status list option

(** {1 Checker support} *)

(** [was_observed r] is true once the program saw the request's completion
    through [wait]/[test]/[is_complete] (directly or via the [_all]/[_any]
    combinators). *)
val was_observed : t -> bool

(** [is_failed r] is true when the request was aborted — the leak check
    skips failed requests (failure injection legitimately abandons them). *)
val is_failed : t -> bool
