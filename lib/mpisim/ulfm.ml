module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

let schedule_failure w ~at ~world_rank =
  if world_rank < 0 || world_rank >= w.World.size then
    Errors.usage "schedule_failure: bad rank %d" world_rank;
  let delay = Float.max 0.0 (at -. World.now w) in
  Engine.schedule w.World.engine ~delay (fun () -> World.kill w world_rank)

let schedule_failures w ~fail_at =
  (* Validate the whole schedule up front so a malformed entry rejects the
     schedule before any kill is armed. *)
  List.iter
    (fun (world_rank, at) ->
      if world_rank < 0 || world_rank >= w.World.size then
        Errors.usage "schedule_failures: bad rank %d" world_rank;
      if Float.is_nan at then Errors.usage "schedule_failures: NaN time for rank %d" world_rank)
    fail_at;
  List.iter (fun (world_rank, at) -> schedule_failure w ~at ~world_rank) fail_at

let revoke comm =
  Profiling.record_call (Comm.world comm).World.prof "MPI_Comm_revoke";
  World.revoke (Comm.world comm) (Comm.shared comm)

let is_revoked = Comm.is_revoked

let survivors comm =
  let w = Comm.world comm in
  Comm.group comm |> Array.to_list
  |> List.filteri (fun _ wr -> World.is_alive w wr)
  |> Array.of_list

let num_failed comm = Comm.size comm - Array.length (survivors comm)

(* Shrink: the survivor set is computed from ground truth (standing in for
   the ULFM agreement protocol); the first caller materializes the shared
   state, keyed by (parent id, per-rank shrink epoch), which agrees across
   ranks because shrink is collective.  A barrier on the new communicator
   provides the synchronization the real protocol would. *)
let shrink comm =
  let w = Comm.world comm in
  Profiling.record_call w.World.prof "MPI_Comm_shrink";
  let epoch = Comm.next_shrink_epoch comm in
  let key = (Comm.id comm, epoch) in
  let shared =
    match Hashtbl.find_opt w.World.shrink_memo key with
    | Some shared -> shared
    | None ->
        let shared = World.fresh_comm w (survivors comm) in
        Hashtbl.add w.World.shrink_memo key shared;
        shared
  in
  let my_world = Comm.world_rank_of comm (Comm.rank comm) in
  let rank =
    let group = shared.World.group in
    let rec go i =
      if i >= Array.length group then Errors.usage "shrink: caller not among survivors"
      else if group.(i) = my_world then i
      else go (i + 1)
    in
    go 0
  in
  let fresh = Comm.make w shared ~rank in
  Collectives.barrier fresh;
  fresh

(* Agreement: survivors deposit their contribution into a shared cell and
   park until the last one closes the round.  Costs a tree's worth of
   latency, charged to every participant. *)
let agree comm v =
  let w = Comm.world comm in
  Profiling.record_call w.World.prof "MPI_Comm_agree";
  let epoch = Comm.next_agree_epoch comm in
  let key = (Comm.id comm, epoch) in
  let n_survivors = Array.length (survivors comm) in
  let cell =
    match Hashtbl.find_opt w.World.agree_memo key with
    | Some cell -> cell
    | None ->
        let cell = { World.acc = -1; remaining = n_survivors; agree_waiters = [] } in
        Hashtbl.add w.World.agree_memo key cell;
        cell
  in
  let rounds = int_of_float (ceil (log (float_of_int (max 2 n_survivors)) /. log 2.0)) in
  let cost = 2.0 *. float_of_int rounds *. (Netmodel.params w.World.net).latency in
  Engine.delay w.World.engine cost;
  cell.World.acc <- cell.World.acc land v;
  cell.World.remaining <- cell.World.remaining - 1;
  if cell.World.remaining > 0 then
    Engine.suspend w.World.engine (fun resumer ->
        cell.World.agree_waiters <- resumer :: cell.World.agree_waiters)
  else begin
    Hashtbl.remove w.World.agree_memo key;
    let result = cell.World.acc in
    List.iter (fun resumer -> Engine.resume resumer result) cell.World.agree_waiters;
    result
  end
