module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

type comm_shared = { cid : int; group : int array; mutable revoked : bool }

type t = {
  engine : Engine.t;
  net : Netmodel.t;
  size : int;
  mailboxes : Msg.mailbox array;
  env_pool : Msg.pool;
  prof : Profiling.t;
  mutable next_comm_id : int;
  alive : Ds.Bitset.t;
  death_times : float array;  (* world rank -> kill time; infinity while alive *)
  mutable fibers : Engine.fiber array;
  detection_delay : float;
  shrink_memo : (int * int, comm_shared) Hashtbl.t;
  agree_memo : (int * int, agree_cell) Hashtbl.t;
  tuning : Coll_algos.Select.t;
  check : Checker.state;
  trace : Trace.Recorder.t;
  comms : (int, comm_shared) Hashtbl.t;
  exhook : Exhook.t option;
  psets : (string, int array) Hashtbl.t;
  session_comms : (string, comm_shared) Hashtbl.t;
}

and agree_cell = {
  mutable acc : int;
  mutable remaining : int;
  mutable agree_waiters : int Engine.resumer list;
}

let create ?node ?fabric ?(trace = Trace.Recorder.inert) ?exhook ~net_params ~size () =
  if size <= 0 then Errors.usage "World.create: size %d must be positive" size;
  let alive = Ds.Bitset.create size in
  Ds.Bitset.fill alive;
  let net =
    match (fabric, node) with
    | Some f, _ -> Netmodel.create_fabric f ~ranks:size
    | None, Some (intra, node_size) ->
        Netmodel.create_hierarchical ~inter:net_params ~intra ~node_size ~ranks:size
    | None, None -> Netmodel.create net_params ~ranks:size
  in
  {
    engine = Engine.create ();
    net;
    size;
    mailboxes = Array.init size (fun _ -> Msg.create ());
    env_pool = Msg.create_pool ();
    prof = Profiling.create ();
    next_comm_id = 0;
    alive;
    death_times = Array.make size infinity;
    fibers = [||];
    detection_delay = 10.0e-6;
    shrink_memo = Hashtbl.create 8;
    agree_memo = Hashtbl.create 8;
    tuning = Coll_algos.Select.create ();
    check = Checker.create ();
    trace;
    comms = Hashtbl.create 8;
    exhook;
    psets =
      (let t = Hashtbl.create 4 in
       Hashtbl.replace t "mpi://world" (Array.init size Fun.id);
       t);
    session_comms = Hashtbl.create 4;
  }

let now w = Engine.now w.engine

(* Wildcard-receive match chooser: picks among candidate source ranks.
   None unless exploration is active, so the common path costs one field
   read. *)
let match_chooser w =
  match w.exhook with
  | Some h -> Some (fun ids -> h.Exhook.choose ~kind:Engine.Match ~ids)
  | None -> None

let arrival_adjust w =
  match w.exhook with Some h -> h.Exhook.arrival_adjust | None -> None

let fresh_comm w group =
  let cid = w.next_comm_id in
  w.next_comm_id <- w.next_comm_id + 1;
  let shared = { cid; group; revoked = false } in
  Hashtbl.replace w.comms cid shared;
  shared

(* {2 Sessions: named process sets}

   Process sets are plain named rank groups; registering or querying one
   touches no communicator or counter state, so sessions built from them
   cannot perturb a library that initialized independently. *)

let register_pset w name ranks =
  if name = "" then Errors.usage "World.register_pset: empty name";
  if Array.length ranks = 0 then Errors.usage "World.register_pset: empty process set %S" name;
  Array.iter
    (fun r ->
      if r < 0 || r >= w.size then
        Errors.usage "World.register_pset: rank %d out of range in %S" r name)
    ranks;
  let sorted = Array.copy ranks in
  Array.sort compare sorted;
  for i = 0 to Array.length sorted - 2 do
    if sorted.(i) = sorted.(i + 1) then
      Errors.usage "World.register_pset: duplicate rank %d in %S" sorted.(i) name
  done;
  (match Hashtbl.find_opt w.psets name with
  | Some existing when existing <> sorted ->
      Errors.usage "World.register_pset: %S already registered with a different membership" name
  | Some _ | None -> ());
  Hashtbl.replace w.psets name sorted

let pset w name = Hashtbl.find_opt w.psets name
let pset_names w = Hashtbl.fold (fun k _ acc -> k :: acc) w.psets [] |> List.sort compare

let session_comm w ~key group =
  match Hashtbl.find_opt w.session_comms key with
  | Some shared -> shared
  | None ->
      let cid = w.next_comm_id in
      w.next_comm_id <- w.next_comm_id + 1;
      let shared = { cid; group; revoked = false } in
      Hashtbl.replace w.comms cid shared;
      Hashtbl.replace w.session_comms key shared;
      shared

let comm_revoked w cid =
  match Hashtbl.find_opt w.comms cid with Some s -> s.revoked | None -> false

let is_alive w r = Ds.Bitset.mem w.alive r

let comm_has_failed w cid =
  match Hashtbl.find_opt w.comms cid with
  | Some s -> Array.exists (fun r -> not (is_alive w r)) s.group
  | None -> false

let comm_failed_at w cid =
  match Hashtbl.find_opt w.comms cid with
  | Some s -> Array.fold_left (fun acc r -> Float.min acc w.death_times.(r)) infinity s.group
  | None -> infinity

let any_dead w group =
  let n = Array.length group in
  let rec go i = if i >= n then None else if is_alive w group.(i) then go (i + 1) else Some group.(i)
  in
  go 0

let kill w r =
  if is_alive w r then begin
    Ds.Bitset.clear w.alive r;
    w.death_times.(r) <- now w;
    if r < Array.length w.fibers then Engine.kill w.engine w.fibers.(r);
    (* The dead rank's own posted receives will never be resumed. *)
    Array.iter (fun mb -> Msg.drop_owned mb ~world_rank:r) w.mailboxes;
    (* Receives expecting data from [r] fail after the detection delay. *)
    let expects_dead (pr : Msg.pending_recv) =
      pr.src_world = r || (pr.src_world = -1 && Array.exists (fun g -> g = r) pr.comm_group)
    in
    Engine.schedule w.engine ~delay:w.detection_delay (fun () ->
        Array.iter
          (fun mb ->
            Msg.fail_matching mb ~pred:expects_dead ~exn:(Errors.Process_failed { world_rank = r }))
          w.mailboxes)
  end

let revoke w shared =
  if not shared.revoked then begin
    shared.revoked <- true;
    (* Revocation propagates asynchronously; a small delay models the
       revoke-propagation messages. *)
    Engine.schedule w.engine ~delay:(2.0 *. (Netmodel.params w.net).latency) (fun () ->
        Array.iter
          (fun mb ->
            Msg.fail_matching mb
              ~pred:(fun pr -> pr.want_comm = shared.cid)
              ~exn:Errors.Comm_revoked)
          w.mailboxes)
  end
