module Engine = Simnet.Engine
module Algo = Coll_algos.Algo
module Select = Coll_algos.Select

let record comm name = Profiling.record_call (Comm.world comm).World.prof name

(* Annotated algorithm choice, e.g. "MPI_Allreduce[rabenseifner]"; kept in
   a separate profiling category so plain call counts stay exact. *)
let record_algo comm name algo =
  Profiling.record_algo (Comm.world comm).World.prof (Printf.sprintf "%s[%s]" name algo)

(* Record a collective call span around [f] on traced runs.  Each span
   draws a per-(rank, communicator) sequence number; since every rank must
   issue the same sequence of collectives on a communicator, the k-th
   collective lines up across ranks — the analysis pass groups spans by
   (comm, seq) to measure arrival imbalance. *)
let traced comm ~op f =
  let w = Comm.world comm in
  let tr = w.World.trace in
  if not (Trace.Recorder.active tr) then f ()
  else begin
    let rank = Comm.world_rank_of comm (Comm.rank comm) in
    let cid = Comm.id comm in
    let seq = Trace.Recorder.next_coll_seq tr ~rank ~comm:cid in
    let t0 = World.now w in
    Fun.protect
      ~finally:(fun () ->
        Trace.Recorder.add_span tr
          {
            Trace.Event.sp_rank = rank;
            sp_op = op;
            sp_cat = "coll";
            sp_comm = cid;
            sp_seq = seq;
            sp_t0 = t0;
            sp_t1 = World.now w;
          })
      f
  end

let check_root comm root =
  if root < 0 || root >= Comm.size comm then
    Errors.usage "root %d out of range for communicator of size %d" root (Comm.size comm)

let check_count what count =
  if count < 0 then Errors.usage "%s: negative count %d" what count

(* Communication-level ordering check: log this rank's next collective on
   the communicator and verify it against the sequence the other ranks
   issued.  [root]/[count]/[datatype] default to "not checked" (v-variants
   legitimately differ per rank in their counts). *)
let check_coll ?(root = -1) ?(count = -1) ?datatype comm ~op dt_opt =
  if Checker.enabled Communication then begin
    let datatype =
      match datatype with
      | Some n -> n
      | None -> ( match dt_opt with Some dt -> Datatype.name dt | None -> "")
    in
    Checker.record_collective (Comm.world comm).World.check
      ~rank:(Comm.world_rank_of comm (Comm.rank comm))
      ~comm:(Comm.id comm) ~op ~root ~count ~datatype
  end

(* ------------------------------------------------------------------ *)
(* Algorithm selection.                                                *)
(* ------------------------------------------------------------------ *)

(* Selection inputs are identical on every rank of the communicator — the
   tuning table lives in the world, the network parameters come from the
   communicator's group, and the call arguments must agree anyway — so all
   ranks pick the same algorithm without communicating. *)
let tuning comm = (Comm.world comm).World.tuning

let params_for comm =
  Simnet.Netmodel.params_for_group (Comm.world comm).World.net (Comm.group comm)

(* Topology profile of the communicator's group ([None] off tiered
   fabrics, where selection must stay exactly pre-topology). *)
let hier_for comm =
  Simnet.Netmodel.hier_for_group (Comm.world comm).World.net (Comm.group comm)

(* Node id of every communicator rank — the structure the hierarchical
   bodies derive their leader/member ordering from. *)
let nodes_for comm =
  let net = (Comm.world comm).World.net in
  Array.map (fun wr -> Simnet.Netmodel.node_of net wr) (Comm.group comm)

let pin_algorithm comm ~coll ~algo = Select.pin (tuning comm) ~cid:(Comm.id comm) ~coll ~algo

let pin_table_algorithm comm ~coll table =
  Select.pin_table (tuning comm) ~cid:(Comm.id comm) ~coll table

let unpin_algorithm comm ~coll = Select.unpin (tuning comm) ~cid:(Comm.id comm) ~coll
let pinned_algorithm comm ~coll = Select.pinned (tuning comm) ~cid:(Comm.id comm) ~coll

let pinned_table_algorithm comm ~coll = Select.pinned_table (tuning comm) ~cid:(Comm.id comm) ~coll

let select_bcast comm dt count =
  Select.bcast ?hier:(hier_for comm) (tuning comm) ~cid:(Comm.id comm) (params_for comm)
    ~p:(Comm.size comm) ~bytes:(Datatype.bytes dt count)

let select_allreduce comm dt op count =
  Select.allreduce ?hier:(hier_for comm) (tuning comm) ~cid:(Comm.id comm) (params_for comm)
    ~p:(Comm.size comm) ~bytes:(Datatype.bytes dt count) ~elems:count
    ~op_cost:(Op.cost_per_element op) ~commutative:(Op.commutative op)

let select_allgather comm dt count =
  Select.allgather (tuning comm) ~cid:(Comm.id comm) (params_for comm) ~p:(Comm.size comm)
    ~bytes:(Datatype.bytes dt count)

let select_alltoall comm dt count =
  Select.alltoall ?hier:(hier_for comm) (tuning comm) ~cid:(Comm.id comm) (params_for comm)
    ~p:(Comm.size comm) ~bytes:(Datatype.bytes dt count)

(* Tag discipline: every rank must draw the same number of collective tags
   per call, so each dispatcher draws a fixed count up front (enough for
   the most tag-hungry candidate) no matter which algorithm wins. *)
let draw2 comm =
  let a = Comm.next_collective_tag comm in
  let b = Comm.next_collective_tag comm in
  (a, b)

let draw4 comm =
  let a = Comm.next_collective_tag comm in
  let b = Comm.next_collective_tag comm in
  let c = Comm.next_collective_tag comm in
  let d = Comm.next_collective_tag comm in
  (a, b, c, d)

let run_bcast comm dt buf pos count ~root algo ~tags:(tag, tag2) =
  match (algo : Algo.bcast) with
  | Bcast_binomial -> Coll_impl.bcast_binomial comm dt buf pos count ~root ~tag
  | Bcast_scatter_allgather ->
      Coll_impl.bcast_scatter_allgather comm dt buf pos count ~root ~tag ~tag2
  | Bcast_node_leader ->
      Coll_impl.bcast_node_leader comm dt buf pos count ~root ~nodes:(nodes_for comm) ~tag ~tag2

let run_allreduce comm dt op ~sendbuf ~pos ~recvbuf ~count algo ~tags:(t1, t2, t3, t4) =
  match (algo : Algo.allreduce) with
  | Ar_reduce_bcast ->
      Coll_impl.allreduce_reduce_bcast comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag:t1 ~tag2:t2
  | Ar_recursive_doubling ->
      Coll_impl.allreduce_recursive_doubling comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold:t1
        ~tag:t2
  | Ar_rabenseifner ->
      Coll_impl.allreduce_rabenseifner comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_fold:t1
        ~tag_rs:t2 ~tag_ag:t3
  | Ar_ring -> Coll_impl.allreduce_ring comm dt op ~sendbuf ~pos ~recvbuf ~count ~tag_rs:t1 ~tag_ag:t2
  | Ar_node_leader ->
      Coll_impl.allreduce_node_leader comm dt op ~sendbuf ~pos ~recvbuf ~count
        ~nodes:(nodes_for comm) ~tag_up:t1 ~tag_fold:t2 ~tag_rd:t3 ~tag_down:t4

let run_allgather comm dt ~recvbuf ~rpos ~count ~my_block_pos ~my_block_buf algo ~tag =
  let f =
    match (algo : Algo.allgather) with
    | Ag_bruck -> Coll_impl.allgather_bruck
    | Ag_ring -> Coll_impl.allgather_ring
    | Ag_recursive_doubling -> Coll_impl.allgather_recursive_doubling
  in
  f comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf

let run_alltoall comm dt ~sendbuf ~recvbuf ~count algo ~tags:(t1, t2, t3, t4) =
  match (algo : Algo.alltoall) with
  | A2a_pairwise -> Coll_impl.alltoall_pairwise comm dt ~sendbuf ~recvbuf ~count ~tag:t1
  | A2a_bruck -> Coll_impl.alltoall_bruck comm dt ~sendbuf ~recvbuf ~count ~tag:t1
  | A2a_smp ->
      Coll_impl.alltoall_smp comm dt ~sendbuf ~recvbuf ~count ~nodes:(nodes_for comm) ~tag_local:t1
        ~tag_up:t2 ~tag_net:t3 ~tag_down:t4
  | A2a_hypergrid -> Coll_impl.alltoall_hypergrid comm dt ~sendbuf ~recvbuf ~count ~tag:t1 ~tag2:t2

(* ------------------------------------------------------------------ *)
(* Public operations.                                                  *)
(* ------------------------------------------------------------------ *)

let barrier comm =
  Comm.check_active comm;
  record comm "MPI_Barrier";
  check_coll comm ~op:"MPI_Barrier" None;
  traced comm ~op:"MPI_Barrier" @@ fun () ->
  Coll_impl.dissemination comm ~tag:(Comm.next_collective_tag comm)

let bcast ?(pos = 0) ?count comm dt buf ~root =
  Comm.check_active comm;
  record comm "MPI_Bcast";
  check_root comm root;
  let count = match count with Some c -> c | None -> Array.length buf - pos in
  check_count "bcast" count;
  check_coll comm ~op:"MPI_Bcast" ~root ~count (Some dt);
  traced comm ~op:"MPI_Bcast" @@ fun () ->
  let tags = draw2 comm in
  let algo = select_bcast comm dt count in
  record_algo comm "MPI_Bcast" (Algo.bcast_name algo);
  run_bcast comm dt buf pos count ~root algo ~tags

let reduce ?(pos = 0) ?recvbuf comm dt op ~sendbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Reduce";
  check_root comm root;
  check_count "reduce" count;
  check_coll comm ~op:"MPI_Reduce" ~root ~count (Some dt);
  traced comm ~op:"MPI_Reduce" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  let acc = Coll_impl.reduce_binomial comm dt op ~sendbuf ~pos ~count ~root ~tag in
  if Comm.rank comm = root then begin
    match recvbuf with
    | Some rb -> Array.blit acc 0 rb 0 count
    | None -> Errors.usage "reduce: the root rank needs a receive buffer"
  end

let allreduce ?(pos = 0) comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Allreduce";
  check_count "allreduce" count;
  check_coll comm ~op:"MPI_Allreduce" ~count (Some dt);
  traced comm ~op:"MPI_Allreduce" @@ fun () ->
  let tags = draw4 comm in
  let algo = select_allreduce comm dt op count in
  record_algo comm "MPI_Allreduce" (Algo.allreduce_name algo);
  run_allreduce comm dt op ~sendbuf ~pos ~recvbuf ~count algo ~tags

let allgather ?(inplace = false) ?(spos = 0) ?(rpos = 0) comm dt ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Allgather";
  check_count "allgather" count;
  check_coll comm ~op:"MPI_Allgather" ~count (Some dt);
  traced comm ~op:"MPI_Allgather" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  let algo = select_allgather comm dt count in
  record_algo comm "MPI_Allgather" (Algo.allgather_name algo);
  let my_block_buf, my_block_pos =
    if inplace then (recvbuf, rpos + (Comm.rank comm * count)) else (sendbuf, spos)
  in
  run_allgather comm dt ~recvbuf ~rpos ~count ~my_block_pos ~my_block_buf algo ~tag

(* Ring allgatherv: in step s, pass along the block received in step s-1.
   Successive messages between the same neighbours share a tag; the network
   model preserves per-link FIFO order (injection rate >= wire rate). *)
let allgatherv ?(inplace = false) ?(spos = 0) comm dt ~sendbuf ~scount ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Allgatherv";
  check_count "allgatherv" scount;
  let p = Comm.size comm and r = Comm.rank comm in
  if Array.length rcounts <> p || Array.length rdispls <> p then
    Errors.usage "allgatherv: rcounts/rdispls must have one entry per rank";
  if scount <> rcounts.(r) then
    Errors.usage "allgatherv: send count %d disagrees with rcounts.(%d) = %d" scount r rcounts.(r);
  check_coll comm ~op:"MPI_Allgatherv" (Some dt);
  traced comm ~op:"MPI_Allgatherv" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  if not inplace then Array.blit sendbuf spos recvbuf rdispls.(r) scount;
  if p > 1 then begin
    let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
    for step = 1 to p - 1 do
      let send_block = (r - step + 1 + p) mod p in
      let recv_block = (r - step + p) mod p in
      let req =
        P2p.isend ~ctx:Internal ~pos:rdispls.(send_block) ~count:rcounts.(send_block) comm dt
          recvbuf ~dst ~tag
      in
      ignore
        (P2p.recv ~ctx:Internal ~pos:rdispls.(recv_block) ~count:rcounts.(recv_block) comm dt
           recvbuf ~src ~tag);
      ignore (Request.wait req)
    done
  end

let gather ?(spos = 0) ?(rpos = 0) ?recvbuf comm dt ~sendbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Gather";
  check_root comm root;
  check_count "gather" count;
  check_coll comm ~op:"MPI_Gather" ~root ~count (Some dt);
  traced comm ~op:"MPI_Gather" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let recvbuf =
      match recvbuf with
      | Some rb -> rb
      | None -> Errors.usage "gather: the root rank needs a receive buffer"
    in
    Array.blit sendbuf spos recvbuf (rpos + (r * count)) count;
    for src = 0 to p - 1 do
      if src <> root then
        ignore (P2p.recv ~ctx:Internal ~pos:(rpos + (src * count)) ~count comm dt recvbuf ~src ~tag)
    done
  end
  else P2p.send ~ctx:Internal ~pos:spos ~count comm dt sendbuf ~dst:root ~tag

let gatherv ?(spos = 0) ?recvbuf ?rcounts ?rdispls comm dt ~sendbuf ~scount ~root =
  Comm.check_active comm;
  record comm "MPI_Gatherv";
  check_root comm root;
  check_count "gatherv" scount;
  check_coll comm ~op:"MPI_Gatherv" ~root (Some dt);
  traced comm ~op:"MPI_Gatherv" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let recvbuf, rcounts, rdispls =
      match (recvbuf, rcounts, rdispls) with
      | Some rb, Some rc, Some rd -> (rb, rc, rd)
      | _ -> Errors.usage "gatherv: the root rank needs recvbuf, rcounts and rdispls"
    in
    Array.blit sendbuf spos recvbuf rdispls.(r) scount;
    for src = 0 to p - 1 do
      if src <> root then
        ignore
          (P2p.recv ~ctx:Internal ~pos:rdispls.(src) ~count:rcounts.(src) comm dt recvbuf ~src ~tag)
    done
  end
  else P2p.send ~ctx:Internal ~pos:spos ~count:scount comm dt sendbuf ~dst:root ~tag

let scatter ?(spos = 0) ?(rpos = 0) ?sendbuf comm dt ~recvbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Scatter";
  check_root comm root;
  check_count "scatter" count;
  check_coll comm ~op:"MPI_Scatter" ~root ~count (Some dt);
  traced comm ~op:"MPI_Scatter" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let sendbuf =
      match sendbuf with
      | Some sb -> sb
      | None -> Errors.usage "scatter: the root rank needs a send buffer"
    in
    Array.blit sendbuf (spos + (r * count)) recvbuf rpos count;
    for dst = 0 to p - 1 do
      if dst <> root then
        P2p.send ~ctx:Internal ~pos:(spos + (dst * count)) ~count comm dt sendbuf ~dst ~tag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~pos:rpos ~count comm dt recvbuf ~src:root ~tag)

let scatterv ?(rpos = 0) ?sendbuf ?scounts ?sdispls comm dt ~recvbuf ~rcount ~root =
  Comm.check_active comm;
  record comm "MPI_Scatterv";
  check_root comm root;
  check_count "scatterv" rcount;
  check_coll comm ~op:"MPI_Scatterv" ~root (Some dt);
  traced comm ~op:"MPI_Scatterv" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let sendbuf, scounts, sdispls =
      match (sendbuf, scounts, sdispls) with
      | Some sb, Some sc, Some sd -> (sb, sc, sd)
      | _ -> Errors.usage "scatterv: the root rank needs sendbuf, scounts and sdispls"
    in
    Array.blit sendbuf sdispls.(r) recvbuf rpos scounts.(r);
    for dst = 0 to p - 1 do
      if dst <> root then
        P2p.send ~ctx:Internal ~pos:sdispls.(dst) ~count:scounts.(dst) comm dt sendbuf ~dst ~tag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~pos:rpos ~count:rcount comm dt recvbuf ~src:root ~tag)

let alltoall comm dt ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Alltoall";
  check_count "alltoall" count;
  check_coll comm ~op:"MPI_Alltoall" ~count (Some dt);
  traced comm ~op:"MPI_Alltoall" @@ fun () ->
  let tags = draw4 comm in
  let algo = select_alltoall comm dt count in
  record_algo comm "MPI_Alltoall" (Algo.alltoall_name algo);
  run_alltoall comm dt ~sendbuf ~recvbuf ~count algo ~tags

let check_v_arrays what comm scounts sdispls rcounts rdispls =
  let p = Comm.size comm in
  if
    Array.length scounts <> p || Array.length sdispls <> p || Array.length rcounts <> p
    || Array.length rdispls <> p
  then Errors.usage "%s: counts/displacements must have one entry per rank" what

let alltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Alltoallv";
  check_v_arrays "alltoallv" comm scounts sdispls rcounts rdispls;
  check_coll comm ~op:"MPI_Alltoallv" (Some dt);
  traced comm ~op:"MPI_Alltoallv" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  Coll_impl.post_all_exchange comm dt ~tag
    ~scount_of:(fun d -> scounts.(d))
    ~spos_of:(fun d -> sdispls.(d))
    ~rcount_of:(fun s -> rcounts.(s))
    ~rpos_of:(fun s -> rdispls.(s))
    ~sendbuf ~recvbuf

(* The Alltoallw fallback (MPL's path): same linear posting as alltoallv,
   plus a derived-datatype setup per peer and the generic datatype engine
   on every message — the overheads that make MPL's variable collectives
   measurably slower and less scalable (Ghosh et al., paper Sec. II). *)
let alltoallw_style comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Alltoallw";
  check_v_arrays "alltoallw" comm scounts sdispls rcounts rdispls;
  check_coll comm ~op:"MPI_Alltoallw" (Some dt);
  traced comm ~op:"MPI_Alltoallw" @@ fun () ->
  let p = Comm.size comm in
  let tag = Comm.next_collective_tag comm in
  let type_setup_cost = 0.3e-6 in
  let datatype_engine_cost = 0.4e-6 (* per message, send and receive side *) in
  Comm.compute comm (float_of_int (2 * p) *. (type_setup_cost +. datatype_engine_cost));
  Coll_impl.post_all_exchange comm dt ~tag
    ~scount_of:(fun d -> scounts.(d))
    ~spos_of:(fun d -> sdispls.(d))
    ~rcount_of:(fun s -> rcounts.(s))
    ~rpos_of:(fun s -> rdispls.(s))
    ~sendbuf ~recvbuf

(* Reduce-scatter with equal block sizes: reduce to root, then scatter the
   blocks (the simple algorithm; tuned implementations exist but the cost
   shape — full reduction volume plus a scatter — is the same). *)
let reduce_scatter_block comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Reduce_scatter_block";
  check_count "reduce_scatter_block" count;
  check_coll comm ~op:"MPI_Reduce_scatter_block" ~count (Some dt);
  traced comm ~op:"MPI_Reduce_scatter_block" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let total = p * count in
  let tag = Comm.next_collective_tag comm in
  let acc = Coll_impl.reduce_binomial comm dt op ~sendbuf ~pos:0 ~count:total ~root:0 ~tag in
  let stag = Comm.next_collective_tag comm in
  if r = 0 then begin
    Array.blit acc 0 recvbuf 0 count;
    for dst = 1 to p - 1 do
      P2p.send ~ctx:Internal ~pos:(dst * count) ~count comm dt acc ~dst ~tag:stag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~count comm dt recvbuf ~src:0 ~tag:stag)

(* Recursive-doubling inclusive scan. *)
let scan comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Scan";
  check_count "scan" count;
  check_coll comm ~op:"MPI_Scan" ~count (Some dt);
  traced comm ~op:"MPI_Scan" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  Array.blit sendbuf 0 recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let partial = Array.sub sendbuf 0 count in
    let tmp = Array.copy partial in
    let mask = ref 1 in
    while !mask < p do
      let dst = r + !mask and src = r - !mask in
      let req =
        if dst < p then Some (P2p.isend ~ctx:Internal ~count comm dt partial ~dst ~tag) else None
      in
      if src >= 0 then begin
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
        (* tmp covers ranks below src inclusive: combine on the left. *)
        for i = 0 to count - 1 do
          partial.(i) <- Op.apply op tmp.(i) partial.(i);
          recvbuf.(i) <- Op.apply op tmp.(i) recvbuf.(i)
        done;
        Comm.compute comm (2.0 *. float_of_int count *. Op.cost_per_element op)
      end;
      (match req with Some req -> ignore (Request.wait req) | None -> ());
      mask := !mask lsl 1
    done
  end

let exscan comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Exscan";
  check_count "exscan" count;
  check_coll comm ~op:"MPI_Exscan" ~count (Some dt);
  traced comm ~op:"MPI_Exscan" @@ fun () ->
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if p > 1 && count > 0 then begin
    let partial = Array.sub sendbuf 0 count in
    let tmp = Array.copy partial in
    let have_result = ref false in
    let mask = ref 1 in
    while !mask < p do
      let dst = r + !mask and src = r - !mask in
      let req =
        if dst < p then Some (P2p.isend ~ctx:Internal ~count comm dt partial ~dst ~tag) else None
      in
      if src >= 0 then begin
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
        for i = 0 to count - 1 do
          partial.(i) <- Op.apply op tmp.(i) partial.(i);
          recvbuf.(i) <- (if !have_result then Op.apply op tmp.(i) recvbuf.(i) else tmp.(i))
        done;
        have_result := true;
        Comm.compute comm (2.0 *. float_of_int count *. Op.cost_per_element op)
      end;
      (match req with Some req -> ignore (Request.wait req) | None -> ());
      mask := !mask lsl 1
    done
  end

(* Non-blocking collectives: a helper fiber (standing in for an MPI
   progress thread) runs the blocking algorithm and completes the request.
   Internal tags — and the algorithm choice — are fixed at call time so
   they line up across ranks regardless of how the helper fibers
   interleave. *)
let spawn_collective comm ~label body =
  let w = Comm.world comm in
  let req = Request.create w.World.engine in
  Checker.track_request w.World.check
    ~rank:(Comm.world_rank_of comm (Comm.rank comm))
    ~comm:(Comm.id comm) ~op:label ~at:(World.now w) req;
  let _ : Engine.fiber =
    Engine.spawn w.World.engine ~label (fun () ->
        match body () with
        | () -> Request.complete req { source = -1; tag = 0; count = 0 }
        | exception ((Errors.Process_failed _ | Errors.Comm_revoked) as e) ->
            (* failure injection: surface on the waiter (ULFM semantics)
               instead of tearing down the engine from a helper fiber *)
            Request.abort req e)
  in
  req

let ibarrier comm =
  Comm.check_active comm;
  record comm "MPI_Ibarrier";
  check_coll comm ~op:"MPI_Ibarrier" None;
  traced comm ~op:"MPI_Ibarrier" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"ibarrier" (fun () -> Coll_impl.dissemination comm ~tag)

let ibcast ?(pos = 0) ?count comm dt buf ~root =
  Comm.check_active comm;
  record comm "MPI_Ibcast";
  check_root comm root;
  let count = match count with Some c -> c | None -> Array.length buf - pos in
  check_count "ibcast" count;
  check_coll comm ~op:"MPI_Ibcast" ~root ~count (Some dt);
  traced comm ~op:"MPI_Ibcast" @@ fun () ->
  let tags = draw2 comm in
  let algo = select_bcast comm dt count in
  record_algo comm "MPI_Ibcast" (Algo.bcast_name algo);
  spawn_collective comm ~label:"ibcast" (fun () -> run_bcast comm dt buf pos count ~root algo ~tags)

(* Persistent collective (MPI-4 §6.13): everything rank-coordinated —
   ordering check, tag draw, algorithm selection — happens once at init,
   so every round reuses the same tags and algorithm.  Rounds stay
   separable without fresh tags because each pair's messages keep FIFO
   order and all ranks start rounds in the same order (the MPI contract
   for persistent collectives). *)
let bcast_init ?(pos = 0) ?count comm dt buf ~root =
  Comm.check_active comm;
  record comm "MPI_Bcast_init";
  check_root comm root;
  let count = match count with Some c -> c | None -> Array.length buf - pos in
  check_count "bcast_init" count;
  if pos < 0 || pos + count > Array.length buf then
    Errors.usage "bcast_init: window [%d, %d) exceeds buffer of length %d" pos (pos + count)
      (Array.length buf);
  check_coll comm ~op:"MPI_Bcast_init" ~root ~count (Some dt);
  traced comm ~op:"MPI_Bcast_init" @@ fun () ->
  let w = Comm.world comm in
  let tags = draw2 comm in
  let algo = select_bcast comm dt count in
  record_algo comm "MPI_Bcast_init" (Algo.bcast_name algo);
  let start h =
    Comm.check_active comm;
    traced comm ~op:"MPI_Start" @@ fun () ->
    let req = Persist.request h in
    let _ : Engine.fiber =
      Engine.spawn w.World.engine ~label:"bcast_init" (fun () ->
          run_bcast comm dt buf pos count ~root algo ~tags;
          Request.complete req { source = -1; tag = 0; count })
    in
    ()
  in
  let h =
    Persist.make w.World.engine ~op:"MPI_Bcast_init"
      ~around_wait:(fun _ f -> traced comm ~op:"MPI_Wait" f)
      start
  in
  Checker.track_persistent w.World.check
    ~rank:(Comm.world_rank_of comm (Comm.rank comm))
    ~comm:(Comm.id comm) ~op:"MPI_Bcast_init" ~at:(World.now w)
    ~freed:(fun () -> Persist.is_freed h)
    ~starts:(fun () -> Persist.starts h);
  h

let iallreduce comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Iallreduce";
  check_count "iallreduce" count;
  check_coll comm ~op:"MPI_Iallreduce" ~count (Some dt);
  traced comm ~op:"MPI_Iallreduce" @@ fun () ->
  let tags = draw4 comm in
  let algo = select_allreduce comm dt op count in
  record_algo comm "MPI_Iallreduce" (Algo.allreduce_name algo);
  spawn_collective comm ~label:"iallreduce" (fun () ->
      run_allreduce comm dt op ~sendbuf ~pos:0 ~recvbuf ~count algo ~tags)

let ialltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Ialltoallv";
  check_v_arrays "ialltoallv" comm scounts sdispls rcounts rdispls;
  check_coll comm ~op:"MPI_Ialltoallv" (Some dt);
  traced comm ~op:"MPI_Ialltoallv" @@ fun () ->
  let tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"ialltoallv" (fun () ->
      Coll_impl.post_all_exchange comm dt ~tag
        ~scount_of:(fun d -> scounts.(d))
        ~spos_of:(fun d -> sdispls.(d))
        ~rcount_of:(fun s -> rcounts.(s))
        ~rpos_of:(fun s -> rdispls.(s))
        ~sendbuf ~recvbuf)

(* ------------------------------------------------------------------ *)
(* Communicator management.                                            *)
(* ------------------------------------------------------------------ *)

(* Communicator handles travel between ranks as ordinary (tiny) messages;
   a dedicated opaque datatype keeps that honest in the cost model. *)
let dt_comm : World.comm_shared Datatype.t = Datatype.custom ~name:"MPI_Comm" ~extent:16 ()

(* The leader creates the new shared state and distributes it to the other
   members over the parent communicator. *)
let distribute_shared comm ~members ~tag make_shared =
  let r = Comm.rank comm in
  let leader = members.(0) in
  if r = leader then begin
    let shared = make_shared () in
    let box = [| shared |] in
    Array.iter
      (fun m -> if m <> leader then P2p.send ~ctx:Internal comm dt_comm box ~dst:m ~tag)
      members;
    shared
  end
  else begin
    let box = [| Comm.shared comm |] in
    ignore (P2p.recv ~ctx:Internal comm dt_comm box ~src:leader ~tag);
    box.(0)
  end

let position a x =
  let n = Array.length a in
  let rec go i = if i >= n then Errors.usage "internal: rank not in group" else if a.(i) = x then i else go (i + 1) in
  go 0

let dup comm =
  Comm.check_active comm;
  record comm "MPI_Comm_dup";
  check_coll comm ~op:"MPI_Comm_dup" None;
  traced comm ~op:"MPI_Comm_dup" @@ fun () ->
  let w = Comm.world comm in
  let tag = Comm.next_collective_tag comm in
  let members = Array.init (Comm.size comm) Fun.id in
  let shared =
    distribute_shared comm ~members ~tag (fun () -> World.fresh_comm w (Array.copy (Comm.group comm)))
  in
  Comm.make w shared ~rank:(Comm.rank comm)

let split comm ~color ~key =
  Comm.check_active comm;
  record comm "MPI_Comm_split";
  check_coll comm ~op:"MPI_Comm_split" None;
  traced comm ~op:"MPI_Comm_split" @@ fun () ->
  let w = Comm.world comm in
  let p = Comm.size comm and r = Comm.rank comm in
  let dt = Datatype.triple Datatype.int Datatype.int Datatype.int in
  let entries = Array.make p (0, 0, 0) in
  let tag = Comm.next_collective_tag comm in
  Coll_impl.allgather_bruck comm dt ~recvbuf:entries ~rpos:0 ~count:1 ~tag ~my_block_pos:0
    ~my_block_buf:[| (color, key, r) |];
  let dist_tag = Comm.next_collective_tag comm in
  if color < 0 then None
  else begin
    let members =
      entries |> Array.to_list
      |> List.filter (fun (c, _, _) -> c = color)
      |> List.sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2))
      |> List.map (fun (_, _, rank) -> rank)
      |> Array.of_list
    in
    let shared =
      distribute_shared comm ~members ~tag:dist_tag (fun () ->
          World.fresh_comm w (Array.map (Comm.world_rank_of comm) members))
    in
    Some (Comm.make w shared ~rank:(position members r))
  end

(* MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): one communicator per
   shared-memory node, built by splitting on the network model's placement
   map.  On a flat fabric every rank is its own node, so the result is a
   singleton communicator — the MPI-correct degenerate answer. *)
let split_by_node ?(key = 0) comm =
  let w = Comm.world comm in
  let node =
    Simnet.Netmodel.node_of w.World.net (Comm.world_rank_of comm (Comm.rank comm))
  in
  match split comm ~color:node ~key with
  | Some c -> c
  | None -> assert false (* node ids are never negative *)
