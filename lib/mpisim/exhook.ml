(* Exploration hooks threaded from Mpi.run into the simulator internals.

   This record is the narrow waist between the MPI layer and lib/explore:
   mpisim never depends on the explore library; instead, explore (when
   linked and activated, e.g. via MPISIM_EXPLORE) registers a [factory]
   that Mpi.run consults for every run it starts.  With no factory and no
   explicit [?hooks] argument, runs behave exactly as before. *)

type t = {
  choose : kind:Simnet.Engine.decision_kind -> ids:int array -> int;
      (** decision procedure for every nondeterminism point *)
  arrival_adjust : (src:int -> dst:int -> arrival:float -> float) option;
      (** chaos-layer latency jitter: maps a message's modelled arrival
          time to a (possibly later) one.  The p2p layer guarantees
          per-(src,dst) FIFO by clamping, so the adjustment can be
          arbitrary. *)
}

let factory : (unit -> t option) ref = ref (fun () -> None)
