(** Blocking collective operations, implemented on point-to-point messaging
    with the textbook algorithms (Sanders et al., "Sequential and Parallel
    Algorithms and Data Structures"):

    - barrier: dissemination, [ceil(log2 p)] rounds;
    - reduce: binomial tree;
    - allgatherv: ring (linear rounds, optimal volume);
    - alltoallv: pairwise exchange;
    - alltoallw-style: the linear fan-out fallback real MPI implementations
      use for [MPI_Alltoallw] — every peer gets a message even for zero
      counts, plus per-peer datatype setup; this is the path MPL's
      variable-size collectives take, and why they scale poorly (Sec. II);
    - scan / exscan: recursive doubling;
    - gather(v) / scatter(v): linear at the root (as in practice for the
      irregular variants).

    {b Tuned collectives.}  [bcast], [allreduce], [allgather] and
    [alltoall] (and their non-blocking variants) dispatch through the
    {!Coll_algos.Select} engine: each has several interchangeable
    algorithms in {!Coll_impl}, and the selector picks the candidate with
    the lowest {!Coll_algos.Cost} prediction under the communicator's
    LogGP-style parameters (hierarchical fabrics use the intra-node
    parameter set when the whole group shares a node).  Ties keep the
    pre-tuning default, so small-message behavior — and the profiling
    call counts the paper's Sec. VI experiments rely on — is unchanged.
    Per-communicator overrides are available through {!pin_algorithm}.

    Every call counts once in the profiling layer under its MPI name; the
    tuned collectives additionally count the annotated choice (e.g.
    ["MPI_Allreduce[rabenseifner]"]) in the separate algorithm category.
    Reduction trees reassociate user operations (the usual reason floating
    point results depend on [p] — see the reproducible-reduce plugin);
    non-commutative operations always take the reduce+bcast allreduce. *)

val barrier : Comm.t -> unit

val bcast : ?pos:int -> ?count:int -> Comm.t -> 'a Datatype.t -> 'a array -> root:int -> unit

(** [reduce comm dt op ~sendbuf ~recvbuf ~count ~root] element-wise reduces
    [count] elements.  [recvbuf] is required at the root and ignored
    elsewhere.  [sendbuf] and [recvbuf] may alias (in-place). *)
val reduce :
  ?pos:int ->
  ?recvbuf:'a array ->
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  count:int ->
  root:int ->
  unit

val allreduce :
  ?pos:int ->
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  unit

(** [allgather comm dt ~sendbuf ~recvbuf ~count] concatenates each rank's
    [count]-element block into [recvbuf] (size [p*count]) on every rank.
    With [~inplace:true] the caller's block must already sit at
    [recvbuf.(rank*count)] and [sendbuf] is ignored (MPI_IN_PLACE). *)
val allgather :
  ?inplace:bool ->
  ?spos:int ->
  ?rpos:int ->
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  unit

(** [allgatherv comm dt ~sendbuf ~scount ~recvbuf ~rcounts ~rdispls]
    concatenates variable-size blocks. *)
val allgatherv :
  ?inplace:bool ->
  ?spos:int ->
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scount:int ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  unit

val gather :
  ?spos:int ->
  ?rpos:int ->
  ?recvbuf:'a array ->
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  count:int ->
  root:int ->
  unit

val gatherv :
  ?spos:int ->
  ?recvbuf:'a array ->
  ?rcounts:int array ->
  ?rdispls:int array ->
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scount:int ->
  root:int ->
  unit

val scatter :
  ?spos:int ->
  ?rpos:int ->
  ?sendbuf:'a array ->
  Comm.t ->
  'a Datatype.t ->
  recvbuf:'a array ->
  count:int ->
  root:int ->
  unit

val scatterv :
  ?rpos:int ->
  ?sendbuf:'a array ->
  ?scounts:int array ->
  ?sdispls:int array ->
  Comm.t ->
  'a Datatype.t ->
  recvbuf:'a array ->
  rcount:int ->
  root:int ->
  unit

val alltoall :
  Comm.t -> 'a Datatype.t -> sendbuf:'a array -> recvbuf:'a array -> count:int -> unit

val alltoallv :
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scounts:int array ->
  sdispls:int array ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  unit

(** The [MPI_Alltoallw]-equivalent path: same result as {!alltoallv} but
    with linear message fan-out (p-1 messages even for empty pairs) and
    per-peer datatype setup cost. *)
val alltoallw_style :
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scounts:int array ->
  sdispls:int array ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  unit

(** [reduce_scatter_block comm dt op ~sendbuf ~recvbuf ~count] element-wise
    reduces [p * count] elements and scatters block [i] (of [count]
    elements) to rank [i]. *)
val reduce_scatter_block :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  unit

(** [scan comm dt op ~sendbuf ~recvbuf ~count] computes the inclusive prefix
    reduction over ranks. *)
val scan :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  unit

(** [exscan comm dt op ~sendbuf ~recvbuf ~count] computes the exclusive
    prefix reduction; rank 0's receive buffer is left untouched (as in
    MPI). *)
val exscan :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  unit

(** [ibarrier comm] starts a non-blocking barrier; progress happens
    asynchronously (a helper fiber models an MPI progress thread).  The
    building block of the NBX sparse all-to-all. *)
val ibarrier : Comm.t -> Request.t

(** [ibcast comm dt buf ~root] is the non-blocking broadcast; the buffer
    must not be touched until the request completes. *)
val ibcast : ?pos:int -> ?count:int -> Comm.t -> 'a Datatype.t -> 'a array -> root:int -> Request.t

(** [bcast_init comm dt buf ~root] is the persistent broadcast (MPI-4
    §6.13): validation, the collective-ordering check, tag allocation and
    algorithm selection all happen once, and every {!Persist.start} replays
    the chosen algorithm with the same tags (legal because all ranks start
    rounds in the same order and per-pair message order is FIFO).  The
    root's buffer contents are re-read at each start. *)
val bcast_init :
  ?pos:int -> ?count:int -> Comm.t -> 'a Datatype.t -> 'a array -> root:int -> Persist.t

(** [iallreduce comm dt op ~sendbuf ~recvbuf ~count] is the non-blocking
    allreduce. *)
val iallreduce :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  Request.t

(** [ialltoallv comm dt ...] is the non-blocking irregular exchange. *)
val ialltoallv :
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scounts:int array ->
  sdispls:int array ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  Request.t

(** {1 Algorithm selection}

    Thin wrappers over the world's {!Coll_algos.Select} table, keyed by
    this communicator's id.  Pins must be set identically on every rank
    of the communicator before the collective (they are rank-local hints,
    like MPI info keys). *)

(** [pin_algorithm comm ~coll ~algo] forces collective [coll] (["bcast"],
    ["allreduce"], ["allgather"] or ["alltoall"]) on this communicator to
    algorithm [algo] (see {!Coll_algos.Algo} for the names).
    @raise Invalid_argument on an unknown collective or algorithm name. *)
val pin_algorithm : Comm.t -> coll:string -> algo:string -> unit

(** [pin_table_algorithm comm ~coll table] installs a message-size-keyed
    pin: each [(min_bytes, algo)] row applies from [min_bytes] upward (see
    {!Coll_algos.Select.pin_table}).  This is how auto-tuned per-topology
    tables from [Topology.Autotune] are deployed. *)
val pin_table_algorithm : Comm.t -> coll:string -> (int * string) list -> unit

(** [unpin_algorithm comm ~coll] returns [coll] to cost-based selection. *)
val unpin_algorithm : Comm.t -> coll:string -> unit

(** [pinned_algorithm comm ~coll] is the unconditional override in force,
    if any. *)
val pinned_algorithm : Comm.t -> coll:string -> string option

(** [pinned_table_algorithm comm ~coll] is the size-keyed table in force,
    if any. *)
val pinned_table_algorithm : Comm.t -> coll:string -> (int * string) list option

(** {1 Communicator management} *)

(** [dup comm] duplicates the communicator (collective). *)
val dup : Comm.t -> Comm.t

(** [split comm ~color ~key] partitions ranks by [color], ordering each new
    communicator by [(key, rank)].  A negative color returns [None]
    (MPI_UNDEFINED). *)
val split : Comm.t -> color:int -> key:int -> Comm.t option

(** [split_by_node comm] is MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): the
    sub-communicator of ranks sharing the caller's node, ordered by
    [(key, rank)] (default [key = 0]: by parent rank).  On a flat fabric
    every rank gets a singleton communicator. *)
val split_by_node : ?key:int -> Comm.t -> Comm.t
