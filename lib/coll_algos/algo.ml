type bcast = Bcast_binomial | Bcast_scatter_allgather | Bcast_node_leader

type allreduce =
  | Ar_reduce_bcast
  | Ar_recursive_doubling
  | Ar_rabenseifner
  | Ar_ring
  | Ar_node_leader

type allgather = Ag_bruck | Ag_ring | Ag_recursive_doubling

type alltoall = A2a_pairwise | A2a_bruck | A2a_smp | A2a_hypergrid

let bcast_name = function
  | Bcast_binomial -> "binomial"
  | Bcast_scatter_allgather -> "scatter_allgather"
  | Bcast_node_leader -> "node_leader"

let allreduce_name = function
  | Ar_reduce_bcast -> "reduce_bcast"
  | Ar_recursive_doubling -> "recursive_doubling"
  | Ar_rabenseifner -> "rabenseifner"
  | Ar_ring -> "ring"
  | Ar_node_leader -> "node_leader"

let allgather_name = function
  | Ag_bruck -> "bruck"
  | Ag_ring -> "ring"
  | Ag_recursive_doubling -> "recursive_doubling"

let alltoall_name = function
  | A2a_pairwise -> "pairwise"
  | A2a_bruck -> "bruck"
  | A2a_smp -> "smp"
  | A2a_hypergrid -> "hypergrid"

(* Incumbents first: the selection engine breaks cost ties in list order. *)
let all_bcast = [ Bcast_binomial; Bcast_scatter_allgather; Bcast_node_leader ]

let all_allreduce =
  [ Ar_reduce_bcast; Ar_recursive_doubling; Ar_rabenseifner; Ar_ring; Ar_node_leader ]

let all_allgather = [ Ag_bruck; Ag_ring; Ag_recursive_doubling ]
let all_alltoall = [ A2a_pairwise; A2a_bruck; A2a_smp; A2a_hypergrid ]

let of_name all name s = List.find_opt (fun a -> String.equal (name a) s) all

let bcast_of_name s = of_name all_bcast bcast_name s
let allreduce_of_name s = of_name all_allreduce allreduce_name s
let allgather_of_name s = of_name all_allgather allgather_name s
let alltoall_of_name s = of_name all_alltoall alltoall_name s
