type entry = Fixed of string | Table of (int * string) list

type t = { pins : (int * string, entry) Hashtbl.t }

let create () = { pins = Hashtbl.create 8 }

let known_colls = [ "bcast"; "allreduce"; "allgather"; "alltoall" ]

let validate ~coll ~algo =
  let ok =
    match coll with
    | "bcast" -> Option.is_some (Algo.bcast_of_name algo)
    | "allreduce" -> Option.is_some (Algo.allreduce_of_name algo)
    | "allgather" -> Option.is_some (Algo.allgather_of_name algo)
    | "alltoall" -> Option.is_some (Algo.alltoall_of_name algo)
    | _ ->
        invalid_arg
          (Printf.sprintf "Coll_algos.Select.pin: unknown collective %S (expected one of %s)" coll
             (String.concat ", " known_colls))
  in
  if not ok then
    invalid_arg (Printf.sprintf "Coll_algos.Select.pin: unknown %s algorithm %S" coll algo)

let pin t ~cid ~coll ~algo =
  validate ~coll ~algo;
  Hashtbl.replace t.pins (cid, coll) (Fixed algo)

let pin_table t ~cid ~coll table =
  if table = [] then invalid_arg "Coll_algos.Select.pin_table: empty table";
  List.iter
    (fun (minb, algo) ->
      if minb < 0 then invalid_arg "Coll_algos.Select.pin_table: negative size threshold";
      validate ~coll ~algo)
    table;
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) table in
  Hashtbl.replace t.pins (cid, coll) (Table sorted)

let unpin t ~cid ~coll = Hashtbl.remove t.pins (cid, coll)

let pinned t ~cid ~coll =
  match Hashtbl.find_opt t.pins (cid, coll) with
  | Some (Fixed name) -> Some name
  | Some (Table _) | None -> None

let pinned_table t ~cid ~coll =
  match Hashtbl.find_opt t.pins (cid, coll) with
  | Some (Table rows) -> Some rows
  | Some (Fixed _) | None -> None

(* The algorithm a pin entry names for a payload of [bytes]: a [Fixed] pin
   unconditionally, a [Table] pin through its last threshold <= bytes (no
   row matching means no override). *)
let entry_algo entry ~bytes =
  match entry with
  | Fixed name -> Some name
  | Table rows ->
      List.fold_left (fun acc (minb, algo) -> if bytes >= minb then Some algo else acc) None rows

(* Argmin with strict improvement: candidates are listed incumbent-first,
   so predicted-cost ties reproduce the pre-subsystem behavior. *)
let argmin cost = function
  | [] -> invalid_arg "Coll_algos.Select: no feasible candidate"
  | first :: rest ->
      let best = ref first and best_cost = ref (cost first) in
      List.iter
        (fun a ->
          let c = cost a in
          if c < !best_cost then begin
            best := a;
            best_cost := c
          end)
        rest;
      !best

let choose t ~cid ~coll ~bytes ~of_name ~feasible ~cost candidates =
  let feasible_candidates = List.filter feasible candidates in
  let cost_based () = argmin cost feasible_candidates in
  match Hashtbl.find_opt t.pins (cid, coll) with
  | None -> cost_based ()
  | Some entry -> (
      match entry_algo entry ~bytes with
      | None -> cost_based ()
      | Some name -> (
          match of_name name with
          | Some a when feasible a -> a
          | Some _ | None -> cost_based ()))

let bcast ?hier t ~cid prm ~p ~bytes =
  choose t ~cid ~coll:"bcast" ~bytes ~of_name:Algo.bcast_of_name
    ~feasible:(fun _ -> true)
    ~cost:(fun a -> Cost.bcast ?hier prm ~p ~bytes a)
    Algo.all_bcast

let is_pow2 p = p > 0 && p land (p - 1) = 0

let allreduce ?hier t ~cid prm ~p ~bytes ~elems ~op_cost ~commutative =
  choose t ~cid ~coll:"allreduce" ~bytes ~of_name:Algo.allreduce_of_name
    ~feasible:(fun a ->
      (* Reassociating-and-commuting schedules are reserved for commutative
         operations; the binomial reduce+bcast path is today's behavior for
         the rest. *)
      commutative || a = Algo.Ar_reduce_bcast)
    ~cost:(fun a -> Cost.allreduce ?hier prm ~p ~bytes ~elems ~op_cost a)
    Algo.all_allreduce

let allgather t ~cid prm ~p ~bytes =
  choose t ~cid ~coll:"allgather" ~bytes ~of_name:Algo.allgather_of_name
    ~feasible:(fun a -> a <> Algo.Ag_recursive_doubling || is_pow2 p)
    ~cost:(fun a -> Cost.allgather prm ~p ~bytes a)
    Algo.all_allgather

let alltoall ?hier t ~cid prm ~p ~bytes =
  choose t ~cid ~coll:"alltoall" ~bytes ~of_name:Algo.alltoall_of_name
    ~feasible:(fun _ -> true)
    ~cost:(fun a -> Cost.alltoall ?hier prm ~p ~bytes a)
    Algo.all_alltoall
