(** The collective-algorithm selection engine.

    One [Select.t] lives in each simulated world; it holds the
    per-communicator override ("pin") table.  Selection itself is a pure
    argmin over the {!Cost} predictions, so — absent pins — every rank of
    a communicator picks the same algorithm from the same inputs without
    communicating.

    Pins are rank-local hints in the style of MPI info keys: to stay
    correct they must be set identically on every rank of the communicator
    before the collective (the test suite and the bench sweep do exactly
    that).  A pin naming an algorithm that is infeasible for the current
    call (e.g. recursive-doubling allgather on a non-power-of-two
    communicator, or a Rabenseifner allreduce of a non-commutative
    operation) falls back to the cost-based choice among feasible
    candidates. *)

type t

val create : unit -> t

(** [pin t ~cid ~coll ~algo] pins collective [coll] (["bcast"],
    ["allreduce"], ["allgather"] or ["alltoall"]) on communicator [cid] to
    algorithm [algo].
    @raise Invalid_argument on an unknown collective or algorithm name. *)
val pin : t -> cid:int -> coll:string -> algo:string -> unit

(** [pin_table t ~cid ~coll table] installs a message-size-keyed pin: each
    [(min_bytes, algo)] row takes effect from [min_bytes] upward (the last
    row whose threshold is [<= bytes] wins; payloads below every threshold
    fall back to cost-based selection).  This is the representation the
    [Topology.Autotune] sweep generates.  Replaces any previous pin for
    [(cid, coll)].
    @raise Invalid_argument on an empty table, a negative threshold, or an
    unknown collective/algorithm name. *)
val pin_table : t -> cid:int -> coll:string -> (int * string) list -> unit

(** [unpin t ~cid ~coll] removes an override (a no-op if absent). *)
val unpin : t -> cid:int -> coll:string -> unit

(** [pinned t ~cid ~coll] is the unconditional override in force, if any
    ([None] for size-keyed tables — those depend on the payload). *)
val pinned : t -> cid:int -> coll:string -> string option

(** [pinned_table t ~cid ~coll] is the size-keyed table in force, if any,
    sorted by ascending threshold. *)
val pinned_table : t -> cid:int -> coll:string -> (int * string) list option

(** {1 Selection}

    The [?hier] profile (from {!Simnet.Netmodel.hier_for_group}) unlocks
    hierarchical candidates; without it they predict [infinity] and flat
    selection is unchanged. *)

val bcast :
  ?hier:Simnet.Netmodel.hier_profile ->
  t ->
  cid:int ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  Algo.bcast

val allreduce :
  ?hier:Simnet.Netmodel.hier_profile ->
  t ->
  cid:int ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  elems:int ->
  op_cost:float ->
  commutative:bool ->
  Algo.allreduce

val allgather : t -> cid:int -> Simnet.Netmodel.params -> p:int -> bytes:int -> Algo.allgather

val alltoall :
  ?hier:Simnet.Netmodel.hier_profile ->
  t ->
  cid:int ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  Algo.alltoall
