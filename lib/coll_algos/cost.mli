(** LogGP cost predictors for every candidate collective algorithm.

    All predictors are pure functions of the active network parameters
    (see {!Simnet.Netmodel.params_for_group} for hierarchy awareness), the
    communicator size and the payload, so every rank of a communicator
    computes identical predictions — the property that lets the selection
    engine run without any extra communication (the zero-overhead
    requirement of the paper's Sec. III).

    Conventions: [p] is the communicator size; [bytes] is the payload size
    the MPI call names (full vector for bcast/allreduce, one block for
    allgather, one pairwise block for alltoall); [elems]/[op_cost] feed the
    reduction-compute term of allreduce. *)

(** [ceil_log2 p] is the number of rounds of a binomial/doubling schedule
    ([0] for [p <= 1]). *)
val ceil_log2 : int -> int

(** [grid_dims p] is the near-square [(rows, cols)] 2D factorization of
    [p] (rows >= cols), computed exactly like [Mpisim.Cart.dims_create] so
    the hypergrid cost predictor and its runtime body agree. *)
val grid_dims : int -> int * int

(** The [?hier] parameter on the predictors below is the topology profile
    of the communicator's group (see {!Simnet.Netmodel.hier_for_group}).
    Hierarchical algorithm variants predict [infinity] without one — on a
    flat fabric they are never auto-selected, keeping pre-topology
    behavior bit-identical — and otherwise split their phases between
    [h_intra] and [h_inter] instead of using the single pessimistic
    spanning tier. *)

val bcast :
  ?hier:Simnet.Netmodel.hier_profile ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  Algo.bcast ->
  float

val allreduce :
  ?hier:Simnet.Netmodel.hier_profile ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  elems:int ->
  op_cost:float ->
  Algo.allreduce ->
  float

(** [bytes] is one rank's block; every rank receives [(p-1) * bytes]. *)
val allgather : Simnet.Netmodel.params -> p:int -> bytes:int -> Algo.allgather -> float

(** [bytes] is one (source, destination) block. *)
val alltoall :
  ?hier:Simnet.Netmodel.hier_profile ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  Algo.alltoall ->
  float
