(** LogGP cost predictors for every candidate collective algorithm.

    All predictors are pure functions of the active network parameters
    (see {!Simnet.Netmodel.params_for_group} for hierarchy awareness), the
    communicator size and the payload, so every rank of a communicator
    computes identical predictions — the property that lets the selection
    engine run without any extra communication (the zero-overhead
    requirement of the paper's Sec. III).

    Conventions: [p] is the communicator size; [bytes] is the payload size
    the MPI call names (full vector for bcast/allreduce, one block for
    allgather, one pairwise block for alltoall); [elems]/[op_cost] feed the
    reduction-compute term of allreduce. *)

(** [ceil_log2 p] is the number of rounds of a binomial/doubling schedule
    ([0] for [p <= 1]). *)
val ceil_log2 : int -> int

val bcast : Simnet.Netmodel.params -> p:int -> bytes:int -> Algo.bcast -> float

val allreduce :
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  elems:int ->
  op_cost:float ->
  Algo.allreduce ->
  float

(** [bytes] is one rank's block; every rank receives [(p-1) * bytes]. *)
val allgather : Simnet.Netmodel.params -> p:int -> bytes:int -> Algo.allgather -> float

(** [bytes] is one (source, destination) block. *)
val alltoall : Simnet.Netmodel.params -> p:int -> bytes:int -> Algo.alltoall -> float
