(** The catalogue of tuned collective algorithms.

    Each major collective has at least two interchangeable algorithms; the
    runtime bodies live in [Mpisim.Coll_impl] (they need point-to-point
    messaging), while this module only names the candidates so the cost
    model and the selection engine can reason about them without depending
    on the MPI layer. *)

(** Broadcast. *)
type bcast =
  | Bcast_binomial  (** binomial tree: [ceil(log2 p)] full-size messages *)
  | Bcast_scatter_allgather
      (** van de Geijn: binomial scatter + ring allgather; bandwidth-optimal
          for large payloads *)
  | Bcast_node_leader
      (** hierarchical: binomial bcast over node leaders, then binomial
          bcast within each node; wins when inter-node latency dominates *)

(** Allreduce. *)
type allreduce =
  | Ar_reduce_bcast  (** binomial reduce to rank 0 + binomial bcast *)
  | Ar_recursive_doubling  (** latency-optimal: [ceil(log2 p)] exchanges *)
  | Ar_rabenseifner
      (** recursive-halving reduce-scatter + recursive-doubling allgather;
          bandwidth- and compute-optimal for large payloads *)
  | Ar_ring  (** ring reduce-scatter + ring allgather; linear startups *)
  | Ar_node_leader
      (** hierarchical: intra-node binomial reduce, inter-leader
          recursive doubling, intra-node binomial bcast *)

(** Allgather. *)
type allgather =
  | Ag_bruck  (** logarithmic rounds for arbitrary [p] *)
  | Ag_ring  (** [p - 1] neighbour rounds, optimal volume *)
  | Ag_recursive_doubling  (** power-of-two [p] only *)

(** Alltoall. *)
type alltoall =
  | A2a_pairwise
      (** post-all linear exchange: O(p) startups, one wire latency *)
  | A2a_bruck  (** [ceil(log2 p)] rounds of aggregated blocks *)
  | A2a_smp
      (** SMP-aware: direct exchange within each node, leader-aggregated
          bundles between nodes; trades memcpy for fewer wire startups *)
  | A2a_hypergrid
      (** d-phase coordinate-fixing routing over a near-square process
          grid (the paper's grid all-to-all, Fig. 9) *)

val bcast_name : bcast -> string
val allreduce_name : allreduce -> string
val allgather_name : allgather -> string
val alltoall_name : alltoall -> string
val bcast_of_name : string -> bcast option
val allreduce_of_name : string -> allreduce option
val allgather_of_name : string -> allgather option
val alltoall_of_name : string -> alltoall option

(** Candidate lists, incumbent (pre-subsystem default) first: ties in
    predicted cost keep today's behavior. *)

val all_bcast : bcast list

val all_allreduce : allreduce list
val all_allgather : allgather list
val all_alltoall : alltoall list
