module N = Simnet.Netmodel

let ceil_log2 p =
  let rec go k pow = if pow >= p then k else go (k + 1) (pow * 2) in
  if p <= 1 then 0 else go 0 1

let largest_pow2 p =
  let rec go pow = if pow * 2 <= p then go (pow * 2) else pow in
  if p < 1 then 1 else go 1

let fi = float_of_int

(* One uncongested message of [b] (float) bytes. *)
let msg prm b = N.startup_cost prm +. (b *. N.per_byte_cost prm)

let bcast prm ~p ~bytes algo =
  let n = fi bytes in
  let rounds = ceil_log2 p in
  match (algo : Algo.bcast) with
  | Bcast_binomial -> fi rounds *. msg prm n
  | Bcast_scatter_allgather ->
      (* Binomial scatter moves (p-1)/p * n down the tree in log rounds of
         halving size; the ring allgather then does p-1 rounds of n/p. *)
      let frac = fi (p - 1) /. fi (max p 1) in
      (fi (rounds + p - 1) *. N.startup_cost prm) +. (2.0 *. frac *. n *. N.per_byte_cost prm)

let allreduce prm ~p ~bytes ~elems ~op_cost algo =
  let n = fi bytes in
  let e = fi elems in
  let rounds = ceil_log2 p in
  let frac = fi (p - 1) /. fi (max p 1) in
  let pof2 = largest_pow2 p in
  (* Non-power-of-two fold/unfold: one extra full-size exchange each way. *)
  let fold = if p > pof2 then 2.0 *. msg prm n +. (e *. op_cost) else 0.0 in
  match (algo : Algo.allreduce) with
  | Ar_reduce_bcast -> fi (2 * rounds) *. msg prm n +. (fi rounds *. e *. op_cost)
  | Ar_recursive_doubling -> fold +. (fi (ceil_log2 pof2) *. (msg prm n +. (e *. op_cost)))
  | Ar_rabenseifner ->
      fold
      +. (fi (2 * ceil_log2 pof2) *. N.startup_cost prm)
      +. (2.0 *. frac *. n *. N.per_byte_cost prm)
      +. (frac *. e *. op_cost)
  | Ar_ring ->
      (fi (2 * (p - 1)) *. N.startup_cost prm)
      +. (2.0 *. frac *. n *. N.per_byte_cost prm)
      +. (frac *. e *. op_cost)

let allgather prm ~p ~bytes algo =
  let n = fi bytes in
  match (algo : Algo.allgather) with
  | Ag_bruck ->
      (* Round sizes min(m, p-m) for m = 1, 2, 4, ... *)
      let cost = ref 0.0 in
      let m = ref 1 in
      while !m < p do
        let s = min !m (p - !m) in
        cost := !cost +. msg prm (fi s *. n);
        m := !m + s
      done;
      !cost
  | Ag_ring -> fi (p - 1) *. msg prm n
  | Ag_recursive_doubling ->
      let cost = ref 0.0 in
      let m = ref 1 in
      while !m < p do
        cost := !cost +. msg prm (fi !m *. n);
        m := !m * 2
      done;
      !cost

let alltoall prm ~p ~bytes algo =
  let n = fi bytes in
  match (algo : Algo.alltoall) with
  | A2a_pairwise ->
      (* All p-1 requests posted up front: startups serialize on the ports
         (the Omega(p) term) but only one wire latency is exposed. *)
      fi (p - 1)
      *. (prm.N.send_overhead +. prm.N.recv_overhead +. (n *. N.per_byte_cost prm))
      +. prm.N.latency
  | A2a_bruck ->
      (* ceil(log2 p) blocking rounds, each shipping the blocks whose index
         has the round's bit set (about p/2 of them). *)
      let cost = ref 0.0 in
      let pof = ref 1 in
      while !pof < p do
        let nsel = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then incr nsel
        done;
        cost := !cost +. msg prm (fi !nsel *. n);
        pof := !pof * 2
      done;
      !cost
