module N = Simnet.Netmodel

let ceil_log2 p =
  let rec go k pow = if pow >= p then k else go (k + 1) (pow * 2) in
  if p <= 1 then 0 else go 0 1

let largest_pow2 p =
  let rec go pow = if pow * 2 <= p then go (pow * 2) else pow in
  if p < 1 then 1 else go 1

let fi = float_of_int

(* One uncongested message of [b] (float) bytes. *)
let msg prm b = N.startup_cost prm +. (b *. N.per_byte_cost prm)

(* Near-square 2D grid over [p] cells, mirroring [Mpisim.Cart.dims_create]
   (greedy largest-prime-first assignment) so the hypergrid predictor and
   the runtime body agree on the grid shape.  Returns (rows, cols) with
   rows >= cols. *)
let grid_dims p =
  if p <= 0 then (1, 1)
  else begin
    let dims = [| 1; 1 |] in
    let rec factors n d acc =
      if n = 1 then acc
      else if n mod d = 0 then factors (n / d) d (d :: acc)
      else factors n (d + 1) acc
    in
    let fs = List.sort (fun a b -> compare b a) (factors p 2 []) in
    List.iter
      (fun f ->
        let smallest = ref 0 in
        Array.iteri (fun i d -> if d < dims.(!smallest) then smallest := i) dims;
        dims.(!smallest) <- dims.(!smallest) * f)
      fs;
    Array.sort (fun a b -> compare b a) dims;
    (dims.(0), dims.(1))
  end

let bcast ?hier prm ~p ~bytes algo =
  let n = fi bytes in
  let rounds = ceil_log2 p in
  match (algo : Algo.bcast) with
  | Bcast_binomial -> fi rounds *. msg prm n
  | Bcast_scatter_allgather ->
      (* Binomial scatter moves (p-1)/p * n down the tree in log rounds of
         halving size; the ring allgather then does p-1 rounds of n/p. *)
      let frac = fi (p - 1) /. fi (max p 1) in
      (fi (rounds + p - 1) *. N.startup_cost prm) +. (2.0 *. frac *. n *. N.per_byte_cost prm)
  | Bcast_node_leader -> (
      (* Only meaningful on a multi-node group: binomial over the leaders
         at the spanning tier, then binomial within the fullest node. *)
      match hier with
      | None -> infinity
      | Some h ->
          (fi (ceil_log2 h.N.h_nodes) *. msg h.N.h_inter n)
          +. (fi (ceil_log2 h.N.h_max_per_node) *. msg h.N.h_intra n))

let allreduce ?hier prm ~p ~bytes ~elems ~op_cost algo =
  let n = fi bytes in
  let e = fi elems in
  let rounds = ceil_log2 p in
  let frac = fi (p - 1) /. fi (max p 1) in
  let pof2 = largest_pow2 p in
  (* Non-power-of-two fold/unfold: one extra full-size exchange each way. *)
  let fold = if p > pof2 then 2.0 *. msg prm n +. (e *. op_cost) else 0.0 in
  match (algo : Algo.allreduce) with
  | Ar_reduce_bcast -> fi (2 * rounds) *. msg prm n +. (fi rounds *. e *. op_cost)
  | Ar_recursive_doubling -> fold +. (fi (ceil_log2 pof2) *. (msg prm n +. (e *. op_cost)))
  | Ar_rabenseifner ->
      fold
      +. (fi (2 * ceil_log2 pof2) *. N.startup_cost prm)
      +. (2.0 *. frac *. n *. N.per_byte_cost prm)
      +. (frac *. e *. op_cost)
  | Ar_ring ->
      (fi (2 * (p - 1)) *. N.startup_cost prm)
      +. (2.0 *. frac *. n *. N.per_byte_cost prm)
      +. (frac *. e *. op_cost)
  | Ar_node_leader -> (
      match hier with
      | None -> infinity
      | Some h ->
          let intra_rounds = ceil_log2 h.N.h_max_per_node in
          (* Intra-node binomial reduce (combine each round), inter-leader
             recursive doubling (with non-power-of-two fold), intra-node
             binomial bcast of the result. *)
          let intra =
            (fi intra_rounds *. (msg h.N.h_intra n +. (e *. op_cost)))
            +. (fi intra_rounds *. msg h.N.h_intra n)
          in
          let npof2 = largest_pow2 h.N.h_nodes in
          let nfold =
            if h.N.h_nodes > npof2 then (2.0 *. msg h.N.h_inter n) +. (e *. op_cost) else 0.0
          in
          let inter =
            nfold +. (fi (ceil_log2 npof2) *. (msg h.N.h_inter n +. (e *. op_cost)))
          in
          intra +. inter)

let allgather prm ~p ~bytes algo =
  let n = fi bytes in
  match (algo : Algo.allgather) with
  | Ag_bruck ->
      (* Round sizes min(m, p-m) for m = 1, 2, 4, ... *)
      let cost = ref 0.0 in
      let m = ref 1 in
      while !m < p do
        let s = min !m (p - !m) in
        cost := !cost +. msg prm (fi s *. n);
        m := !m + s
      done;
      !cost
  | Ag_ring -> fi (p - 1) *. msg prm n
  | Ag_recursive_doubling ->
      let cost = ref 0.0 in
      let m = ref 1 in
      while !m < p do
        cost := !cost +. msg prm (fi !m *. n);
        m := !m * 2
      done;
      !cost

let alltoall ?hier prm ~p ~bytes algo =
  let n = fi bytes in
  match (algo : Algo.alltoall) with
  | A2a_pairwise ->
      (* All p-1 requests posted up front: startups serialize on the ports
         (the Omega(p) term) but only one wire latency is exposed. *)
      fi (p - 1)
      *. (prm.N.send_overhead +. prm.N.recv_overhead +. (n *. N.per_byte_cost prm))
      +. prm.N.latency
  | A2a_bruck ->
      (* ceil(log2 p) blocking rounds, each shipping the blocks whose index
         has the round's bit set (about p/2 of them). *)
      let cost = ref 0.0 in
      let pof = ref 1 in
      while !pof < p do
        let nsel = ref 0 in
        for i = 0 to p - 1 do
          if i land !pof <> 0 then incr nsel
        done;
        cost := !cost +. msg prm (fi !nsel *. n);
        pof := !pof * 2
      done;
      !cost
  | A2a_smp -> (
      match hier with
      | None -> infinity
      | Some h ->
          (* Leaders are the bottleneck: gather remote-destined blocks from
             node peers, pairwise-exchange node-to-node bundles, scatter
             arrivals; plus the direct intra-node exchange. *)
          let mpn = fi h.N.h_max_per_node and nodes = fi h.N.h_nodes in
          let remote_per_rank = (nodes -. 1.0) *. mpn *. n in
          let bundle = mpn *. mpn *. n in
          ((mpn -. 1.0) *. msg h.N.h_intra remote_per_rank)
          +. ((nodes -. 1.0) *. msg h.N.h_inter bundle)
          +. ((mpn -. 1.0) *. msg h.N.h_intra remote_per_rank)
          +. ((mpn -. 1.0) *. msg h.N.h_intra n))
  | A2a_hypergrid -> (
      (* Two coordinate-fixing phases over a near-square grid: (cols-1)
         bundles of rows blocks, then (rows-1) bundles of cols blocks, plus
         a full repack of the local buffer between phases.  Only a
         candidate on hierarchical fabrics, where cutting the Omega(p)
         startup term to O(sqrt p) pays for the extra volume. *)
      match hier with
      | None -> infinity
      | Some _ ->
          (* Like pairwise, each phase posts all its requests up front, so
             per-bundle startups serialize on the injection port while only
             one wire latency is exposed. *)
          let rows, cols = grid_dims p in
          let inj b = prm.N.send_overhead +. (b *. prm.N.injection_byte_time) in
          let phase dim bundle =
            if dim <= 1 then 0.0
            else msg prm bundle +. (fi (Int.max 0 (dim - 2)) *. inj bundle)
          in
          phase cols (fi rows *. n) +. phase rows (fi cols *. n))
