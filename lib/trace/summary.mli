(** Compact text rendering of an analysis {!Analysis.report}: per-rank
    time breakdown, top-k wait states, and critical-path composition. *)

(** [to_string ?top report] renders the report; [top] (default 5) bounds
    the number of wait states listed. *)
val to_string : ?top:int -> Analysis.report -> string

(** [print ?top report] writes {!to_string} to stdout. *)
val print : ?top:int -> Analysis.report -> unit
