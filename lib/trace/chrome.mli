(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Each rank becomes one thread track ([pid], [tid = rank]) of complete
    ("X") events for call spans and wait intervals; every matched message
    becomes a flow-arrow pair ("s" at injection on the sender track, "f"
    at delivery on the receiver track) sharing the message id.  Timestamps
    are microseconds, as the format requires. *)

(** [events ?pid ?process_name data] is the flat list of trace-event
    objects for [data].  [pid] (default 0) and [process_name] (default
    ["mpisim"]) let several runs coexist in one file as separate process
    groups. *)
val events :
  ?pid:int -> ?process_name:string -> Event.data -> Serde.Json.t list

(** [wrap events] packages event objects as the standard
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] envelope. *)
val wrap : Serde.Json.t list -> Serde.Json.t

(** [to_json data] = [wrap (events data)]. *)
val to_json : Event.data -> Serde.Json.t
