type t = {
  act : bool;
  ranks : int;
  spans : Event.span Ds.Vec.t;
  messages : Event.message Ds.Vec.t;
  waits : Event.wait Ds.Vec.t;
  rank_end : float array;
  coll_seq : (int * int, int ref) Hashtbl.t;
  mutable next_msg_id : int;
}

let make act ranks =
  {
    act;
    ranks;
    spans = Ds.Vec.create ();
    messages = Ds.Vec.create ();
    waits = Ds.Vec.create ();
    rank_end = Array.make (max ranks 1) (-1.0);
    coll_seq = Hashtbl.create 16;
    next_msg_id = 0;
  }

let inert = make false 0
let create ~ranks = make true ranks
let active t = t.act
let add_span t span = if t.act then Ds.Vec.push t.spans span

let next_coll_seq t ~rank ~comm =
  if not t.act then -1
  else
    let key = (rank, comm) in
    let r =
      match Hashtbl.find_opt t.coll_seq key with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add t.coll_seq key r;
          r
    in
    let v = !r in
    incr r;
    v

let add_message t ~src ~dst ~tag ~bytes ~user ~sent ~arrived =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  let m =
    {
      Event.msg_id = id;
      msg_src = src;
      msg_dst = dst;
      msg_tag = tag;
      msg_bytes = bytes;
      msg_user = user;
      msg_sent = sent;
      msg_arrived = arrived;
      msg_posted = -1.0;
      msg_matched = -1.0;
    }
  in
  if t.act then Ds.Vec.push t.messages m;
  m

let add_wait t ~rank ~t0 ~t1 =
  if t.act && t1 > t0 && rank >= 0 && rank < t.ranks then
    Ds.Vec.push t.waits { Event.w_rank = rank; w_t0 = t0; w_t1 = t1 }

let rank_done t ~rank ~time =
  if t.act && rank >= 0 && rank < Array.length t.rank_end then
    t.rank_end.(rank) <- time

let finish t ~total =
  let rank_end =
    Array.map (fun e -> if e < 0.0 then total else e) t.rank_end
  in
  {
    Event.ranks = t.ranks;
    spans = Ds.Vec.to_list t.spans;
    messages = Ds.Vec.to_list t.messages;
    waits = Ds.Vec.to_list t.waits;
    rank_end;
    total;
  }

(* Process-wide default, mirroring Checker's MPISIM_CHECK gating. *)

let env_default () =
  match Sys.getenv_opt "MPISIM_TRACE" with
  | None -> false
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)

let default = ref (env_default ())
let default_enabled () = !default
let set_default b = default := b

let with_default b f =
  let old = !default in
  default := b;
  Fun.protect ~finally:(fun () -> default := old) f
