type wait_class = Late_sender | Late_receiver | Wait_at_collective

type wait_state = {
  ws_class : wait_class;
  ws_rank : int;
  ws_peer : int;
  ws_op : string;
  ws_time : float;
  ws_amount : float;
}

type rank_stats = {
  rank : int;
  span : float;
  waiting : float;
  working : float;
  late_sender : float;
  late_receiver : float;
  coll_wait : float;
}

type step_kind = Run | Blocked | Transfer

type step = {
  st_kind : step_kind;
  st_rank : int;
  st_t0 : float;
  st_t1 : float;
  st_op : string;
}

type report = {
  data : Event.data;
  wait_states : wait_state list;
  per_rank : rank_stats array;
  critical_path : step list;
}

let op_at (d : Event.data) ~rank ~time =
  (* Innermost enclosing span: smallest duration among those covering
     [time].  Linear scan — traces are per-run and modest. *)
  let best = ref None in
  List.iter
    (fun (s : Event.span) ->
      if s.sp_rank = rank && s.sp_t0 <= time && time <= s.sp_t1 then
        match !best with
        | Some (b : Event.span) when b.sp_t1 -. b.sp_t0 <= s.sp_t1 -. s.sp_t0
          ->
            ()
        | _ -> best := Some s)
    d.spans;
  match !best with Some s -> s.sp_op | None -> "(wait)"

(* --- Wait-state classification ------------------------------------- *)

let classify_messages (d : Event.data) acc =
  List.iter
    (fun (m : Event.message) ->
      if m.Event.msg_user && Event.matched m then
        if m.msg_posted >= 0.0 && m.msg_posted < m.msg_arrived then
          (* Receiver was ready first: it idled on the late sender. *)
          acc :=
            {
              ws_class = Late_sender;
              ws_rank = m.msg_dst;
              ws_peer = m.msg_src;
              (* Sample inside the wait interval: the match instant is
                 also the start of whatever runs next. *)
              ws_op =
                op_at d ~rank:m.msg_dst
                  ~time:((m.msg_posted +. m.msg_matched) /. 2.0);
              ws_time = m.msg_matched;
              ws_amount = m.msg_matched -. m.msg_posted;
            }
            :: !acc
        else if m.msg_posted > m.msg_arrived then
          (* Payload sat in the mailbox: charge the exposure to the
             sender, whose data was produced too early. *)
          acc :=
            {
              ws_class = Late_receiver;
              ws_rank = m.msg_src;
              ws_peer = m.msg_dst;
              ws_op = op_at d ~rank:m.msg_src ~time:m.msg_sent;
              ws_time = m.msg_matched;
              ws_amount = m.msg_matched -. m.msg_arrived;
            }
            :: !acc)
    d.messages

let classify_collectives (d : Event.data) acc =
  (* Group collective spans by (comm, seq): the k-th collective a rank
     enters on a communicator is the same logical call on every rank. *)
  let groups : (int * int, Event.span list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (s : Event.span) ->
      if s.sp_seq >= 0 && s.sp_cat = "coll" then
        let key = (s.sp_comm, s.sp_seq) in
        match Hashtbl.find_opt groups key with
        | Some r -> r := s :: !r
        | None -> Hashtbl.add groups key (ref [ s ]))
    d.spans;
  Hashtbl.iter
    (fun _ r ->
      match !r with
      | [] | [ _ ] -> ()
      | members ->
          let max_t0 =
            List.fold_left
              (fun a (s : Event.span) -> Float.max a s.sp_t0)
              neg_infinity members
          in
          List.iter
            (fun (s : Event.span) ->
              let w =
                Float.min (max_t0 -. s.sp_t0) (s.sp_t1 -. s.sp_t0)
              in
              if w > 0.0 then
                acc :=
                  {
                    ws_class = Wait_at_collective;
                    ws_rank = s.sp_rank;
                    ws_peer = -1;
                    ws_op = s.sp_op;
                    ws_time = max_t0;
                    ws_amount = w;
                  }
                  :: !acc)
            members)
    groups

(* --- Per-rank stats -------------------------------------------------- *)

let per_rank_stats (d : Event.data) wait_states =
  Array.init d.ranks (fun r ->
      let span = d.rank_end.(r) in
      let waiting =
        List.fold_left
          (fun a (w : Event.wait) ->
            if w.w_rank = r then a +. (w.w_t1 -. w.w_t0) else a)
          0.0 d.waits
      in
      let sum cls =
        List.fold_left
          (fun a ws ->
            if ws.ws_rank = r && ws.ws_class = cls then a +. ws.ws_amount
            else a)
          0.0 wait_states
      in
      {
        rank = r;
        span;
        waiting;
        working = span -. waiting;
        late_sender = sum Late_sender;
        late_receiver = sum Late_receiver;
        coll_wait = sum Wait_at_collective;
      })

(* --- Critical path --------------------------------------------------- *)

let critical_path (d : Event.data) =
  (* Per-rank waits sorted by end time, for "latest wait ending <= t". *)
  let waits_of = Array.make (max d.ranks 1) [||] in
  for r = 0 to d.ranks - 1 do
    let ws =
      List.filter (fun (w : Event.wait) -> w.w_rank = r) d.waits
      |> Array.of_list
    in
    Array.sort
      (fun (a : Event.wait) (b : Event.wait) -> compare a.w_t1 b.w_t1)
      ws;
    waits_of.(r) <- ws
  done;
  let latest_wait rank t =
    let ws = waits_of.(rank) in
    let best = ref None in
    (* Arrays are sorted ascending by w_t1; scan from the back. *)
    (try
       for i = Array.length ws - 1 downto 0 do
         if ws.(i).Event.w_t1 <= t then begin
           best := Some ws.(i);
           raise Exit
         end
       done
     with Exit -> ());
    !best
  in
  (* Messages matched at (dst, time): the resume of a blocking receive
     coincides with the delivery event, so match times equal wait ends
     exactly (both read the same engine clock at the same event). *)
  let matches : (int, Event.message list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (m : Event.message) ->
      if Event.matched m then
        match Hashtbl.find_opt matches m.Event.msg_dst with
        | Some r -> r := m :: !r
        | None -> Hashtbl.add matches m.Event.msg_dst (ref [ m ]))
    d.messages;
  let message_into rank t =
    (* The binding in-edge: a message delivered exactly at [t] whose
       injection strictly precedes [t] (guarantees backward progress).
       Among candidates take the latest injection — the tightest chain. *)
    match Hashtbl.find_opt matches rank with
    | None -> None
    | Some r ->
        List.fold_left
          (fun best (m : Event.message) ->
            if m.Event.msg_matched = t && m.msg_sent < t then
              match best with
              | Some (b : Event.message) when b.msg_sent >= m.msg_sent ->
                  best
              | _ -> Some m
            else best)
          None !r
  in
  let start_rank = ref 0 in
  for r = 1 to d.ranks - 1 do
    if d.rank_end.(r) > d.rank_end.(!start_rank) then start_rank := r
  done;
  let steps = ref [] in
  let rank = ref !start_rank and t = ref d.total in
  let guard = ref (List.length d.waits + List.length d.messages + 16) in
  while !t > 0.0 && !guard > 0 do
    decr guard;
    match latest_wait !rank !t with
    | None ->
        steps :=
          {
            st_kind = Run;
            st_rank = !rank;
            st_t0 = 0.0;
            st_t1 = !t;
            st_op = op_at d ~rank:!rank ~time:!t;
          }
          :: !steps;
        t := 0.0
    | Some w ->
        if w.Event.w_t1 < !t then
          steps :=
            {
              st_kind = Run;
              st_rank = !rank;
              st_t0 = w.w_t1;
              st_t1 = !t;
              st_op = op_at d ~rank:!rank ~time:!t;
            }
            :: !steps;
        let tend = w.Event.w_t1 in
        (match message_into !rank tend with
        | Some m ->
            steps :=
              {
                st_kind = Transfer;
                st_rank = m.Event.msg_src;
                st_t0 = m.msg_sent;
                st_t1 = tend;
                st_op = Printf.sprintf "msg %d->%d" m.msg_src m.msg_dst;
              }
              :: !steps;
            rank := m.Event.msg_src;
            t := m.msg_sent
        | None ->
            steps :=
              {
                st_kind = Blocked;
                st_rank = !rank;
                st_t0 = w.w_t0;
                st_t1 = tend;
                st_op = "(idle)";
              }
              :: !steps;
            t := w.Event.w_t0)
  done;
  !steps

let analyze (d : Event.data) =
  let acc = ref [] in
  classify_messages d acc;
  classify_collectives d acc;
  let wait_states =
    List.sort (fun a b -> compare b.ws_amount a.ws_amount) !acc
  in
  {
    data = d;
    wait_states;
    per_rank = per_rank_stats d wait_states;
    critical_path = critical_path d;
  }

let critical_length r =
  List.fold_left (fun a s -> a +. (s.st_t1 -. s.st_t0)) 0.0 r.critical_path
