(** The event model of the tracing subsystem (Scalasca/Vampir-style).

    A trace is a flat record of what one simulated run did, stamped with
    simulated time and world rank:

    - {b spans}: enter/exit of each logical MPI call (collectives,
      point-to-point, RMA) plus user-annotated regions;
    - {b messages}: one record per injected message — user or
      library-internal — carrying the four timestamps that wait-state
      analysis needs (sent, arrived, receive posted, matched);
    - {b waits}: intervals during which a rank's fiber was suspended on an
      external event (a blocking receive, a request wait, an agreement).

    The recorder (see {!Recorder}) produces these; {!Analysis} classifies
    them and {!Chrome} exports them. *)

(** One completed MPI call (or user region) on one rank. *)
type span = {
  sp_rank : int;  (** world rank *)
  sp_op : string;  (** operation name, e.g. ["MPI_Allreduce"] *)
  sp_cat : string;  (** ["coll"], ["p2p"], ["rma"] or ["user"] *)
  sp_comm : int;  (** communicator id, [-1] when not applicable *)
  sp_seq : int;
      (** per-(rank, communicator) collective index used to line the same
          collective call up across ranks; [-1] for non-collectives *)
  sp_t0 : float;  (** enter time, simulated seconds *)
  sp_t1 : float;  (** exit time *)
}

(** One message through the simulated network.  [msg_posted] and
    [msg_matched] stay [-1.0] until the receive side stamps them; a message
    that is never received keeps [msg_matched = -1.0]. *)
type message = {
  msg_id : int;  (** unique per trace, used as the Chrome flow id *)
  msg_src : int;  (** sender world rank *)
  msg_dst : int;  (** receiver world rank *)
  msg_tag : int;
  msg_bytes : int;
  msg_user : bool;  (** user-level send (vs. collective-internal) *)
  msg_sent : float;  (** injection time at the sender *)
  msg_arrived : float;  (** arrival at the receiver's mailbox *)
  mutable msg_posted : float;  (** when the matching receive was posted *)
  mutable msg_matched : float;  (** when the payload was delivered *)
}

(** One interval during which a rank was suspended waiting for an external
    event (blocking receive, request wait, agreement). *)
type wait = { w_rank : int; w_t0 : float; w_t1 : float }

(** A complete trace of one run. *)
type data = {
  ranks : int;
  spans : span list;  (** in completion order *)
  messages : message list;  (** in injection order *)
  waits : wait list;  (** in resumption order *)
  rank_end : float array;  (** per-rank finish time (last is [total]) *)
  total : float;  (** final simulated time of the run *)
}

(** [stamp_match m ~posted ~time] records the receive-side timestamps of a
    message: when the matching receive was posted and when the payload was
    delivered. *)
val stamp_match : message -> posted:float -> time:float -> unit

(** [matched m] is true once the message was delivered. *)
val matched : message -> bool
