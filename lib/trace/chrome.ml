open Serde

let us t = t *. 1e6

let events ?(pid = 0) ?(process_name = "mpisim") (d : Event.data) =
  let num f = Json.Num f in
  let str s = Json.Str s in
  let acc = ref [] in
  let push e = acc := e :: !acc in
  (* Metadata: name the process and one thread track per rank. *)
  push
    (Json.Obj
       [
         ("name", str "process_name");
         ("ph", str "M");
         ("pid", num (float_of_int pid));
         ("args", Json.Obj [ ("name", str process_name) ]);
       ]);
  for r = 0 to d.ranks - 1 do
    push
      (Json.Obj
         [
           ("name", str "thread_name");
           ("ph", str "M");
           ("pid", num (float_of_int pid));
           ("tid", num (float_of_int r));
           ("args", Json.Obj [ ("name", str (Printf.sprintf "rank %d" r)) ]);
         ])
  done;
  (* Complete events for call spans. *)
  List.iter
    (fun (s : Event.span) ->
      push
        (Json.Obj
           [
             ("name", str s.sp_op);
             ("cat", str s.sp_cat);
             ("ph", str "X");
             ("pid", num (float_of_int pid));
             ("tid", num (float_of_int s.sp_rank));
             ("ts", num (us s.sp_t0));
             ("dur", num (us (s.sp_t1 -. s.sp_t0)));
           ]))
    d.spans;
  (* Complete events for suspension intervals. *)
  List.iter
    (fun (w : Event.wait) ->
      push
        (Json.Obj
           [
             ("name", str "(wait)");
             ("cat", str "wait");
             ("ph", str "X");
             ("pid", num (float_of_int pid));
             ("tid", num (float_of_int w.w_rank));
             ("ts", num (us w.w_t0));
             ("dur", num (us (w.w_t1 -. w.w_t0)));
           ]))
    d.waits;
  (* Flow arrows for every matched message: "s" at injection on the
     sender track, "f" at delivery on the receiver track, tied by id. *)
  List.iter
    (fun (m : Event.message) ->
      if Event.matched m then begin
        let name = Printf.sprintf "msg tag=%d" m.Event.msg_tag in
        let id = num (float_of_int m.msg_id) in
        push
          (Json.Obj
             [
               ("name", str name);
               ("cat", str "msg");
               ("ph", str "s");
               ("id", id);
               ("pid", num (float_of_int pid));
               ("tid", num (float_of_int m.msg_src));
               ("ts", num (us m.msg_sent));
             ]);
        push
          (Json.Obj
             [
               ("name", str name);
               ("cat", str "msg");
               ("ph", str "f");
               ("bp", str "e");
               ("id", id);
               ("pid", num (float_of_int pid));
               ("tid", num (float_of_int m.msg_dst));
               ("ts", num (us m.msg_matched));
             ])
      end)
    d.messages;
  List.rev !acc

let wrap evs =
  Json.Obj
    [ ("traceEvents", Json.List evs); ("displayTimeUnit", Json.Str "ms") ]

let to_json d = wrap (events d)
