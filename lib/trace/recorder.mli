(** Event recorder: the write side of the tracing subsystem.

    A recorder is either {e active} (allocated per traced run, accumulates
    events) or the shared {!inert} instance that every hook point treats as
    "tracing disabled".  All recording entry points first check {!active},
    so a disabled recorder costs one load and branch per hook — the same
    zero-overhead discipline the correctness checker follows. *)

type t

(** The shared disabled recorder.  [active inert = false]; recording into
    it is a no-op. *)
val inert : t

(** [create ~ranks] allocates an empty active recorder for a world of
    [ranks] ranks. *)
val create : ranks:int -> t

val active : t -> bool

(** [add_span t span] appends a completed call span. *)
val add_span : t -> Event.span -> unit

(** [next_coll_seq t ~rank ~comm] draws the next collective sequence number
    for [(rank, comm)] — the k-th collective a rank enters on a communicator
    gets index k, which lines the same logical collective up across ranks. *)
val next_coll_seq : t -> rank:int -> comm:int -> int

(** [add_message t ~src ~dst ~tag ~bytes ~user ~sent ~arrived] records an
    injected message and returns the (mutable) record so the receive side
    can stamp it later via {!Event.stamp_match}. *)
val add_message :
  t ->
  src:int ->
  dst:int ->
  tag:int ->
  bytes:int ->
  user:bool ->
  sent:float ->
  arrived:float ->
  Event.message

(** [add_wait t ~rank ~t0 ~t1] records a suspension interval of [rank]'s
    fiber.  Zero-length intervals are dropped. *)
val add_wait : t -> rank:int -> t0:float -> t1:float -> unit

(** [rank_done t ~rank ~time] stamps the finish time of [rank]'s main
    fiber. *)
val rank_done : t -> rank:int -> time:float -> unit

(** [finish t ~total] freezes the recorder into an immutable {!Event.data}.
    Ranks that never stamped {!rank_done} get [total] as their end time. *)
val finish : t -> total:float -> Event.data

(** {2 Process-wide default}

    Mirrors [Checker]'s environment gating: the default used by
    [Mpisim.Mpi.run] when no explicit [?trace] is given comes from the
    [MPISIM_TRACE] environment variable ([1], [true], [on], [yes] — case
    insensitive — enable it). *)

val default_enabled : unit -> bool
val set_default : bool -> unit

(** [with_default b f] runs [f] with the process-wide default forced to
    [b], restoring the previous value afterwards (also on exceptions). *)
val with_default : bool -> (unit -> 'a) -> 'a
