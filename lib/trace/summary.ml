let class_name = function
  | Analysis.Late_sender -> "late-sender"
  | Analysis.Late_receiver -> "late-receiver"
  | Analysis.Wait_at_collective -> "wait-at-collective"

let ms t = t *. 1e3

let to_string ?(top = 5) (r : Analysis.report) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let d = r.data in
  pf "trace: %d ranks, %d spans, %d messages, %d waits, total %.3f ms\n"
    d.ranks (List.length d.spans)
    (List.length d.messages)
    (List.length d.waits) (ms d.total);
  pf "%-5s %12s %12s %12s %12s %12s %12s\n" "rank" "span(ms)" "work(ms)"
    "wait(ms)" "late-snd" "late-rcv" "coll-wait";
  Array.iter
    (fun (s : Analysis.rank_stats) ->
      pf "%-5d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n" s.rank
        (ms s.span) (ms s.working) (ms s.waiting) (ms s.late_sender)
        (ms s.late_receiver) (ms s.coll_wait))
    r.per_rank;
  (match r.wait_states with
  | [] -> pf "no classified wait states\n"
  | ws ->
      pf "top wait states (of %d):\n" (List.length ws);
      List.iteri
        (fun i w ->
          if i < top then
            pf "  %-18s rank %d%s  %-20s %10.3f ms at t=%.3f ms\n"
              (class_name w.Analysis.ws_class)
              w.ws_rank
              (if w.ws_peer >= 0 then Printf.sprintf " <- %d" w.ws_peer
               else "")
              w.ws_op (ms w.ws_amount) (ms w.ws_time))
        ws);
  let run, blocked, transfer =
    List.fold_left
      (fun (r0, bl, tr) (s : Analysis.step) ->
        let d = s.st_t1 -. s.st_t0 in
        match s.st_kind with
        | Analysis.Run -> (r0 +. d, bl, tr)
        | Analysis.Blocked -> (r0, bl +. d, tr)
        | Analysis.Transfer -> (r0, bl, tr +. d))
      (0.0, 0.0, 0.0) r.critical_path
  in
  pf
    "critical path: %d steps, %.3f ms (run %.3f, transfer %.3f, blocked \
     %.3f)\n"
    (List.length r.critical_path)
    (ms (Analysis.critical_length r))
    (ms run) (ms transfer) (ms blocked);
  Buffer.contents b

let print ?top r = print_string (to_string ?top r)
