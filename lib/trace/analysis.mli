(** Wait-state classification and critical-path extraction
    (Scalasca-style) over a recorded {!Event.data}. *)

(** Taxonomy of classified wait states. *)
type wait_class =
  | Late_sender
      (** the receive was posted before the message arrived: the receiver
          idled because the sender was late *)
  | Late_receiver
      (** the message arrived before the receive was posted: the payload
          sat in the receiver's mailbox (charged to the sender side in
          synchronous-send terms; we charge the exposure to the dst rank's
          peer) *)
  | Wait_at_collective
      (** time a rank spent inside a collective before the last
          participant arrived — load imbalance in front of the collective *)

type wait_state = {
  ws_class : wait_class;
  ws_rank : int;  (** the rank charged with the waiting time *)
  ws_peer : int;  (** the causing peer rank, [-1] if collective-wide *)
  ws_op : string;  (** call site: innermost enclosing span's operation *)
  ws_time : float;  (** when the wait ended (simulated seconds) *)
  ws_amount : float;  (** length of the wait, simulated seconds *)
}

type rank_stats = {
  rank : int;
  span : float;  (** this rank's finish time *)
  waiting : float;  (** total suspended time *)
  working : float;  (** [span - waiting] *)
  late_sender : float;  (** classified late-sender share of [waiting] *)
  late_receiver : float;  (** late-receiver exposure charged to this rank *)
  coll_wait : float;  (** classified collective-imbalance time *)
}

(** One step of the critical path, walked backwards in time. *)
type step_kind =
  | Run  (** the rank was executing (compute or active communication) *)
  | Blocked  (** suspended with no incoming message edge to jump through *)
  | Transfer  (** a message edge: sender inject -> receiver match *)

type step = {
  st_kind : step_kind;
  st_rank : int;
  st_t0 : float;
  st_t1 : float;
  st_op : string;  (** enclosing op at [st_t1], ["(idle)"] for Blocked *)
}

type report = {
  data : Event.data;
  wait_states : wait_state list;  (** sorted by decreasing [ws_amount] *)
  per_rank : rank_stats array;
  critical_path : step list;  (** in forward time order, from [t=0] *)
}

val analyze : Event.data -> report

(** Sum of step durations of the critical path; equals [data.total] by
    construction of the backward walk. *)
val critical_length : report -> float

(** [op_at data ~rank ~time] is the innermost span of [rank] containing
    [time], or ["(wait)"] when no span covers it. *)
val op_at : Event.data -> rank:int -> time:float -> string
