type span = {
  sp_rank : int;
  sp_op : string;
  sp_cat : string;
  sp_comm : int;
  sp_seq : int;
  sp_t0 : float;
  sp_t1 : float;
}

type message = {
  msg_id : int;
  msg_src : int;
  msg_dst : int;
  msg_tag : int;
  msg_bytes : int;
  msg_user : bool;
  msg_sent : float;
  msg_arrived : float;
  mutable msg_posted : float;
  mutable msg_matched : float;
}

type wait = { w_rank : int; w_t0 : float; w_t1 : float }

type data = {
  ranks : int;
  spans : span list;
  messages : message list;
  waits : wait list;
  rank_end : float array;
  total : float;
}

let stamp_match m ~posted ~time =
  m.msg_posted <- posted;
  m.msg_matched <- time

let matched m = m.msg_matched >= 0.0
