(** Named fabric presets used by the benches and the test suite.

    Each preset is a function of the world size so one name covers every
    sweep point. *)

(** Ranks per node modelled for the OmniPath-class machine behind
    {!Simnet.Netmodel.default} (dual-socket 24-core nodes): [48]. *)
val omnipath_node_size : int

(** [omnipath ~ranks] — two-tier cluster, 48 shared-memory ranks per node
    under the default inter-node fabric (the paper-machine shape the
    acceptance bench tunes on). *)
val omnipath : ranks:int -> Fabric.t

(** [omnipath_scattered ~ranks] — the same machine under a fragmented
    batch allocation ({!Place.scattered}): consecutive ranks rarely share
    a node, so topology-blind collectives pay inter-node costs on almost
    every edge.  Requires [ranks] to be a multiple of 48. *)
val omnipath_scattered : ranks:int -> Fabric.t

(** [smp_quad ~ranks] — two-tier cluster of 4-rank nodes (small enough for
    exhaustive differential tests). *)
val smp_quad : ranks:int -> Fabric.t

(** [fat_tree_demo ~ranks] — three-tier fat tree: 8-rank nodes, 4 nodes
    per rack, 2 shared uplinks per node (exercises rack routing and uplink
    congestion). *)
val fat_tree_demo : ranks:int -> Fabric.t

(** All presets by name. *)
val all : (string * (ranks:int -> Fabric.t)) list

val find : string -> (ranks:int -> Fabric.t) option
