(** Builders for tiered fabric descriptions.

    A fabric ({!Simnet.Netmodel.fabric}) is the simulator-facing record:
    rank→node→rack placement plus per-tier LogGP parameters and the shared
    uplink port count.  This module constructs the common shapes with
    validated placements; pass the result to [Mpisim.Mpi.run ~fabric] (or
    export an equivalent [MPISIM_TOPOLOGY] spec, see {!of_spec}). *)

type t = Simnet.Netmodel.fabric

(** [make ~node_of ~rack_of ~node ~rack ~core ()] assembles a fabric from
    explicit placement maps (copied defensively) and per-tier parameters.
    @param uplinks shared uplink ports per node (default [0]: uncongested)
    @raise Invalid_argument if the placement fails {!Place.validate}. *)
val make :
  ?uplinks:int ->
  node_of:int array ->
  rack_of:int array ->
  node:Simnet.Netmodel.params ->
  rack:Simnet.Netmodel.params ->
  core:Simnet.Netmodel.params ->
  unit ->
  t

(** [two_tier ~node_size ~ranks ()] is a cluster of shared-memory nodes
    with block placement and a single rack (the rack tier collapses onto
    the inter-node parameters).
    @param intra intra-node parameters (default {!Simnet.Netmodel.intra_node})
    @param inter inter-node parameters (default {!Simnet.Netmodel.default})
    @param uplinks shared uplink ports per node (default [0]) *)
val two_tier :
  ?intra:Simnet.Netmodel.params ->
  ?inter:Simnet.Netmodel.params ->
  ?uplinks:int ->
  node_size:int ->
  ranks:int ->
  unit ->
  t

(** [fat_tree ~node_size ~nodes_per_rack ~ranks ()] is a three-tier fat
    tree: block rank placement, consecutive nodes blocked into racks.
    @param intra intra-node parameters (default {!Simnet.Netmodel.intra_node})
    @param rack intra-rack parameters (default {!Simnet.Netmodel.low_latency})
    @param core cross-rack parameters (default {!Simnet.Netmodel.default})
    @param uplinks shared uplink ports per node (default [0]) *)
val fat_tree :
  ?intra:Simnet.Netmodel.params ->
  ?rack:Simnet.Netmodel.params ->
  ?core:Simnet.Netmodel.params ->
  ?uplinks:int ->
  node_size:int ->
  nodes_per_rack:int ->
  ranks:int ->
  unit ->
  t

(** [of_spec ~ranks spec] parses an [MPISIM_TOPOLOGY] spec string — see
    {!Simnet.Netmodel.fabric_of_spec}. *)
val of_spec : ranks:int -> string -> t

val ranks : t -> int
val nodes : t -> int
val racks : t -> int

(** [max_per_node f] is the population of the fullest node. *)
val max_per_node : t -> int

(** [describe f] is a one-line human-readable shape summary. *)
val describe : t -> string
