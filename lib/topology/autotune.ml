module N = Simnet.Netmodel
module A = Coll_algos.Algo
module C = Coll_algos.Cost
module S = Coll_algos.Select

type table = (int * string) list

type plan = {
  t_p : int;
  t_sizes : int list;
  t_bcast : table;
  t_allreduce : table;
  t_alltoall : table;
}

(* Eight geometric sweep points, 8 B .. 16 MiB: wide enough to bracket
   every latency/bandwidth crossover of the default parameters, coarse
   enough that a full sweep stays cheap. *)
let default_sizes = List.init 8 (fun i -> 8 lsl (3 * i))

(* Candidate predictions, in catalogue (incumbent-first) order. *)

let predict_bcast ?hier prm ~p ~bytes =
  List.map (fun a -> (A.bcast_name a, C.bcast ?hier prm ~p ~bytes a)) A.all_bcast

let predict_allreduce ?hier ?(elem_size = 8) ?(op_cost = 1.0e-9) prm ~p ~bytes =
  let elems = bytes / Int.max 1 elem_size in
  List.map
    (fun a -> (A.allreduce_name a, C.allreduce ?hier prm ~p ~bytes ~elems ~op_cost a))
    A.all_allreduce

let predict_alltoall ?hier prm ~p ~bytes =
  List.map (fun a -> (A.alltoall_name a, C.alltoall ?hier prm ~p ~bytes a)) A.all_alltoall

(* Fold a per-size winner sequence into a threshold table: one row per
   algorithm change, the first anchored at 0 so the table is total (pins
   below the smallest sweep size behave like the smallest). *)
let compress rows =
  let rec go acc prev = function
    | [] -> List.rev acc
    | (bytes, algo) :: rest ->
        if prev = Some algo then go acc prev rest
        else
          let threshold = if acc = [] then 0 else bytes in
          go ((threshold, algo) :: acc) (Some algo) rest
  in
  go [] None rows

let crossovers table = List.tl (List.map fst table)

(* The sweep reuses the runtime's own argmin (a pinless [Select.t]), so a
   generated table can never disagree with what cost-based selection would
   have picked at a sweep point. *)
let tune_profile ?(sizes = default_sizes) ?(elem_size = 8) ?(op_cost = 1.0e-9)
    ?(commutative = true) ?hier prm ~p =
  let sizes = List.sort_uniq compare sizes in
  if sizes = [] then invalid_arg "Autotune: empty size sweep";
  if p <= 0 then invalid_arg "Autotune: communicator size must be positive";
  let sel = S.create () in
  let sweep pick = compress (List.map (fun bytes -> (bytes, pick ~bytes)) sizes) in
  let bcast =
    sweep (fun ~bytes -> A.bcast_name (S.bcast ?hier sel ~cid:0 prm ~p ~bytes))
  in
  let allreduce =
    sweep (fun ~bytes ->
        let elems = bytes / Int.max 1 elem_size in
        A.allreduce_name
          (S.allreduce ?hier sel ~cid:0 prm ~p ~bytes ~elems ~op_cost ~commutative))
  in
  let alltoall =
    sweep (fun ~bytes -> A.alltoall_name (S.alltoall ?hier sel ~cid:0 prm ~p ~bytes))
  in
  { t_p = p; t_sizes = sizes; t_bcast = bcast; t_allreduce = allreduce; t_alltoall = alltoall }

let tune ?sizes ?elem_size ?op_cost ?commutative fabric ~p =
  let ranks = Fabric.ranks fabric in
  if p > ranks then invalid_arg "Autotune.tune: communicator larger than fabric";
  let net = N.create_fabric fabric ~ranks in
  let group = Array.init p Fun.id in
  let prm = N.params_for_group net group in
  let hier = N.hier_for_group net group in
  tune_profile ?sizes ?elem_size ?op_cost ?commutative ?hier prm ~p

let tune_for_comm ?sizes ?elem_size ?op_cost ?commutative comm =
  let w = Mpisim.Comm.world comm in
  let group = Mpisim.Comm.group comm in
  let prm = N.params_for_group w.Mpisim.World.net group in
  let hier = N.hier_for_group w.Mpisim.World.net group in
  tune_profile ?sizes ?elem_size ?op_cost ?commutative ?hier prm ~p:(Array.length group)

let install plan comm =
  Mpisim.Collectives.pin_table_algorithm comm ~coll:"bcast" plan.t_bcast;
  Mpisim.Collectives.pin_table_algorithm comm ~coll:"allreduce" plan.t_allreduce;
  Mpisim.Collectives.pin_table_algorithm comm ~coll:"alltoall" plan.t_alltoall

let table_to_string table =
  String.concat ", "
    (List.map (fun (threshold, algo) -> Printf.sprintf "%d:%s" threshold algo) table)

let to_string plan =
  Printf.sprintf "p=%d bcast=[%s] allreduce=[%s] alltoall=[%s]" plan.t_p
    (table_to_string plan.t_bcast)
    (table_to_string plan.t_allreduce)
    (table_to_string plan.t_alltoall)
