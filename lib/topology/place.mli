(** Rank placement maps for tiered fabrics.

    A placement is two dense arrays: [node_of] maps world rank to node id,
    [rack_of] maps node id to rack id — the exact representation
    {!Simnet.Netmodel.fabric} consumes.  Builders here cover the standard
    layouts; anything else is an ordinary [int array]. *)

(** [ceil_div a b] rounds the quotient up (node counts from rank counts). *)
val ceil_div : int -> int -> int

(** [block ~ranks ~node_size] packs consecutive ranks onto each node:
    rank [r] lives on node [r / node_size] (the MPI default and the layout
    [Netmodel.fabric_of_spec] uses). *)
val block : ranks:int -> node_size:int -> int array

(** [round_robin ~ranks ~nodes] deals ranks across nodes cyclically:
    rank [r] lives on node [r mod nodes] (the [--map-by node] layout that
    defeats naive node-locality assumptions — useful in tests). *)
val round_robin : ranks:int -> nodes:int -> int array

(** [scattered ~ranks ~node_size] deals ranks to nodes through a fixed
    multiplicative permutation — a deterministic model of a fragmented
    batch allocation where consecutive ranks rarely share a node, the
    adversarial placement for topology-blind collectives.  Balanced by
    construction.
    @raise Invalid_argument unless [node_size] divides [ranks]. *)
val scattered : ranks:int -> node_size:int -> int array

(** [racks ~nodes ~nodes_per_rack] blocks consecutive nodes into racks. *)
val racks : nodes:int -> nodes_per_rack:int -> int array

(** [node_count node_of] is the number of distinct nodes of a dense map. *)
val node_count : int array -> int

(** [populations node_of] is the per-node rank count, indexed by node id. *)
val populations : int array -> int array

(** [validate ~ranks ~node_of ~rack_of] checks a placement is dense and
    consistent: the node map covers exactly [ranks] entries, every node id
    indexes [rack_of], rack ids are non-negative, and every node hosts at
    least one rank.
    @raise Invalid_argument with a specific message otherwise. *)
val validate : ranks:int -> node_of:int array -> rack_of:int array -> unit
