module N = Simnet.Netmodel

type t = N.fabric

let make ?(uplinks = 0) ~node_of ~rack_of ~node ~rack ~core () =
  Place.validate ~ranks:(Array.length node_of) ~node_of ~rack_of;
  if uplinks < 0 then invalid_arg "Fabric.make: uplinks negative";
  {
    N.f_node_of = Array.copy node_of;
    f_rack_of = Array.copy rack_of;
    f_node = node;
    f_rack = rack;
    f_core = core;
    f_uplinks = uplinks;
  }

let two_tier ?(intra = N.intra_node) ?(inter = N.default) ?(uplinks = 0) ~node_size ~ranks () =
  let node_of = Place.block ~ranks ~node_size in
  let nodes = Place.node_count node_of in
  (* one rack: the rack tier collapses onto the core parameters *)
  make ~uplinks ~node_of ~rack_of:(Array.make nodes 0) ~node:intra ~rack:inter ~core:inter ()

let fat_tree ?(intra = N.intra_node) ?(rack = N.low_latency) ?(core = N.default) ?(uplinks = 0)
    ~node_size ~nodes_per_rack ~ranks () =
  let node_of = Place.block ~ranks ~node_size in
  let nodes = Place.node_count node_of in
  let rack_of = Place.racks ~nodes ~nodes_per_rack in
  make ~uplinks ~node_of ~rack_of ~node:intra ~rack ~core ()

let of_spec = N.fabric_of_spec

let nodes (f : t) = Array.length f.N.f_rack_of

let racks (f : t) =
  if Array.length f.N.f_rack_of = 0 then 0
  else 1 + Array.fold_left Int.max 0 f.N.f_rack_of

let ranks (f : t) = Array.length f.N.f_node_of

let max_per_node (f : t) =
  Array.fold_left Int.max 0 (Place.populations f.N.f_node_of)

let describe (f : t) =
  Printf.sprintf "%d ranks / %d nodes / %d racks (<=%d ranks/node, %d uplinks/node)"
    (ranks f) (nodes f) (racks f) (max_per_node f) f.N.f_uplinks
