(* Rank -> node and node -> rack placement maps.

   These are plain [int array]s so they can be handed straight to
   {!Simnet.Netmodel.fabric}; the builders here only encapsulate the two
   standard layouts (block and round-robin) plus the consistency checks
   [Netmodel.create_fabric] would otherwise report late. *)

let ceil_div a b = (a + b - 1) / b

let block ~ranks ~node_size =
  if ranks <= 0 then invalid_arg "Place.block: ranks must be positive";
  if node_size <= 0 then invalid_arg "Place.block: node_size must be positive";
  Array.init ranks (fun r -> r / node_size)

let round_robin ~ranks ~nodes =
  if ranks <= 0 then invalid_arg "Place.round_robin: ranks must be positive";
  if nodes <= 0 then invalid_arg "Place.round_robin: nodes must be positive";
  Array.init ranks (fun r -> r mod nodes)

let racks ~nodes ~nodes_per_rack =
  if nodes <= 0 then invalid_arg "Place.racks: nodes must be positive";
  if nodes_per_rack <= 0 then invalid_arg "Place.racks: nodes_per_rack must be positive";
  Array.init nodes (fun n -> n / nodes_per_rack)

(* Number of distinct nodes named by a placement.  Maps are dense (checked
   by [validate]), so this is [max + 1]. *)
let node_count node_of =
  if Array.length node_of = 0 then 0
  else 1 + Array.fold_left Int.max 0 node_of

let populations node_of =
  let nodes = node_count node_of in
  let pop = Array.make nodes 0 in
  Array.iter (fun n -> pop.(n) <- pop.(n) + 1) node_of;
  pop

(* Deterministic "scattered" placement: ranks are dealt to nodes through a
   fixed multiplicative permutation, modelling a fragmented batch
   allocation where consecutive ranks rarely share a node (the adversarial
   case for topology-blind collectives).  Balanced by construction, which
   needs [node_size] to divide [ranks]. *)
let scattered ~ranks ~node_size =
  if ranks <= 0 then invalid_arg "Place.scattered: ranks must be positive";
  if node_size <= 0 || ranks mod node_size <> 0 then
    invalid_arg "Place.scattered: node_size must divide ranks";
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let mu = ref (Int.max 1 (ranks * 2 / 5)) in
  while gcd !mu ranks <> 1 do
    incr mu
  done;
  Array.init ranks (fun r -> !mu * r mod ranks / node_size)

let validate ~ranks ~node_of ~rack_of =
  if Array.length node_of <> ranks then
    invalid_arg "Place.validate: node map length differs from rank count";
  let nodes = Array.length rack_of in
  if nodes = 0 then invalid_arg "Place.validate: no nodes";
  Array.iter
    (fun n ->
      if n < 0 || n >= nodes then invalid_arg "Place.validate: node id out of range")
    node_of;
  Array.iter
    (fun r -> if r < 0 then invalid_arg "Place.validate: rack id negative")
    rack_of;
  (* every node must host at least one rank, or the uplink port table and
     population profile silently degrade *)
  let seen = Array.make nodes false in
  Array.iter (fun n -> seen.(n) <- true) node_of;
  Array.iteri
    (fun n occupied ->
      if not occupied then
        invalid_arg (Printf.sprintf "Place.validate: node %d hosts no rank" n))
    seen
