(** Analytic auto-tuning of collective algorithm selection.

    [tune] sweeps the {!Coll_algos.Cost} model over a message-size grid for
    one (fabric, communicator size) pair and folds the per-size winners
    into message-size-keyed pin tables ({!Coll_algos.Select.pin_table}
    rows).  The sweep reuses the runtime's own pinless argmin, so at every
    sweep point the generated table agrees with what cost-based selection
    would pick live; between sweep points the table holds the last winner
    (piecewise-constant interpolation).

    Everything here is a pure function of the fabric description, so every
    rank computes an identical plan without communicating — {!install} is
    called collectively but sends nothing. *)

(** [(min_bytes, algo)] rows, ascending; the first row is anchored at 0. *)
type table = (int * string) list

type plan = {
  t_p : int;  (** communicator size the plan was tuned for *)
  t_sizes : int list;  (** the sweep grid, ascending *)
  t_bcast : table;
  t_allreduce : table;
  t_alltoall : table;
}

(** Eight geometric sweep points, 8 B to 16 MiB. *)
val default_sizes : int list

(** {1 Raw predictions}

    Candidate costs in catalogue order, for predicted-vs-simulated
    validation (see [bench/]'s collectives gate). *)

val predict_bcast :
  ?hier:Simnet.Netmodel.hier_profile ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  (string * float) list

val predict_allreduce :
  ?hier:Simnet.Netmodel.hier_profile ->
  ?elem_size:int ->
  ?op_cost:float ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  (string * float) list

val predict_alltoall :
  ?hier:Simnet.Netmodel.hier_profile ->
  Simnet.Netmodel.params ->
  p:int ->
  bytes:int ->
  (string * float) list

(** {1 Tuning} *)

(** [tune fabric ~p] tunes a [p]-rank communicator occupying ranks
    [0 .. p-1] of [fabric] (block-placed groups — the common case).
    @param sizes message-size sweep grid (default {!default_sizes})
    @param elem_size bytes per reduction element (default [8])
    @param op_cost seconds per combined element (default [1e-9], the
    built-in operator cost)
    @param commutative whether the reduction commutes (default [true])
    @raise Invalid_argument on an empty sweep or [p] exceeding the fabric. *)
val tune :
  ?sizes:int list ->
  ?elem_size:int ->
  ?op_cost:float ->
  ?commutative:bool ->
  Fabric.t ->
  p:int ->
  plan

(** [tune_for_comm comm] tunes for a live communicator: the profile comes
    from the communicator's actual group on its world's network model, so
    sub-communicators (e.g. a {!Mpisim.Collectives.split_by_node} leader
    comm) tune against their own tier. *)
val tune_for_comm :
  ?sizes:int list ->
  ?elem_size:int ->
  ?op_cost:float ->
  ?commutative:bool ->
  Mpisim.Comm.t ->
  plan

(** [install plan comm] pins the plan's tables on [comm] via
    {!Mpisim.Collectives.pin_table_algorithm}.  Call it on every rank
    (plans are deterministic, so rank-local installs agree). *)
val install : plan -> Mpisim.Comm.t -> unit

(** [crossovers table] is the thresholds where the winner changes (the
    predicted crossover points; empty for a single-algorithm table). *)
val crossovers : table -> int list

val table_to_string : table -> string
val to_string : plan -> string
