(* Ranks per node on the OmniPath-class machine the default parameters
   model (dual-socket 24-core nodes). *)
let omnipath_node_size = 48

let omnipath ~ranks = Fabric.two_tier ~node_size:omnipath_node_size ~ranks ()

let omnipath_scattered ~ranks =
  let node_of = Place.scattered ~ranks ~node_size:omnipath_node_size in
  let nodes = Place.node_count node_of in
  Fabric.make ~node_of
    ~rack_of:(Array.make nodes 0)
    ~node:Simnet.Netmodel.intra_node ~rack:Simnet.Netmodel.default
    ~core:Simnet.Netmodel.default ()

let smp_quad ~ranks = Fabric.two_tier ~node_size:4 ~ranks ()

let fat_tree_demo ~ranks =
  (* four 8-rank nodes per rack, 2 shared uplinks per node: small enough
     to sweep in tests, congested enough to make the uplink model visible *)
  Fabric.fat_tree ~node_size:8 ~nodes_per_rack:4 ~uplinks:2 ~ranks ()

let all =
  [
    ("omnipath", omnipath);
    ("smp_quad", smp_quad);
    ("fat_tree_demo", fat_tree_demo);
  ]

let find name = List.assoc_opt name all
