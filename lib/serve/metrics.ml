module V = Ds.Vec

type t = { samples : float V.t }

let create () = { samples = V.create () }
let record t l = V.push t.samples (Float.max 0.0 l)
let count t = V.length t.samples
let samples t = V.to_array t.samples

let percentile samples q =
  let n = Array.length samples in
  if n = 0 then Float.nan
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(Int.max 0 (Int.min (n - 1) rank))
  end
