(** Client-side replica cache of hot keys.

    A bounded key->value map each client rank keeps next to its request
    stream: get replies populate it, repeated gets of hot keys are served
    locally (near-zero latency), and servers invalidate cached copies
    when a key is written (see the directory protocol in {!Serve}).

    Consistency is eventual: between a write being applied on the owner
    and the invalidation reaching a client, that client may still serve
    the old value.  The serving engine therefore never folds cached get
    results into its semantic digest — only timing (hit rate, latency)
    depends on the cache.

    Eviction drops the largest cached key: under a Zipf workload key
    popularity decreases with the key id, so the largest key is the best
    deterministic guess for the coldest entry. *)

type t

(** [create ~capacity ()] — [capacity = 0] disables the cache entirely
    ({!find} always misses, {!insert} is a no-op).
    @raise Mpisim.Errors.Usage_error on a negative capacity. *)
val create : capacity:int -> unit -> t

val enabled : t -> bool

(** [find t k] is the cached value, counting the lookup (and the hit). *)
val find : t -> int -> int option

val insert : t -> key:int -> value:int -> unit
val invalidate : t -> int -> unit

(** [clear t] drops every entry (rebalance/recovery consistency epoch);
    statistics survive. *)
val clear : t -> unit

val lookups : t -> int
val hits : t -> int
