(** Latency/throughput accounting for the serving benches.

    Latencies are simulated seconds from a request's open-loop {e arrival
    time} to the moment its reply (or cache hit) is processed on the
    client — so queueing delay from an overloaded server, batching delay
    from the aggregator and network time all count, which is what makes
    the tail (p99) meaningful. *)

type t

val create : unit -> t

(** [record t l] adds one latency sample (clamped at 0). *)
val record : t -> float -> unit

val count : t -> int

(** [samples t] copies the raw samples out (for cross-rank merging). *)
val samples : t -> float array

(** [percentile samples q] with [q] in [0,1] — nearest-rank percentile of
    an unsorted sample array.  Returns [nan] on an empty array. *)
val percentile : float array -> float -> float
