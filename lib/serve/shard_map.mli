(** The shard router: key ranges, shard ownership, load accounting and
    rebalancing plans.

    The key space [0, n_keys) is cut into [n_shards] contiguous ranges
    ("shards"); each shard is owned by one server rank.  The initial
    assignment hands out contiguous shard blocks — deliberately naive, so
    a Zipf workload (whose hot keys cluster at the low end of the key
    space) overloads the first server and the rebalancer has something to
    fix.  {!lpt_plan} computes the classic longest-processing-time
    greedy reassignment from measured per-shard loads; the serving engine
    migrates shard state accordingly (see {!Serve}). *)

type t

(** [create ~n_shards ~n_keys ~p] assigns contiguous shard blocks to the
    [p] ranks.  @raise Mpisim.Errors.Usage_error unless
    [0 < n_shards], [n_shards <= n_keys] and [0 < p]. *)
val create : n_shards:int -> n_keys:int -> p:int -> t

(** [of_owner ~n_keys owner] wraps an explicit shard->rank table (used in
    resilient mode, where {!Ckpt} assigns shard owners). *)
val of_owner : n_keys:int -> int array -> t

val n_shards : t -> int

(** [shard_of_key t k] is the shard whose range contains [k]. *)
val shard_of_key : t -> int -> int

val owner_of_shard : t -> int -> int
val owner_of_key : t -> int -> int

(** [shards_of t rank] lists the shards owned by [rank], ascending. *)
val shards_of : t -> int -> int list

(** [apply_plan t plan] replaces the ownership table. *)
val apply_plan : t -> int array -> unit

(** [server_loads t ~shard_loads ~p] folds per-shard request counts into
    per-rank totals under the current assignment. *)
val server_loads : t -> shard_loads:int array -> p:int -> int array

(** [imbalance loads] is [max/mean] over the per-server loads — 1.0 is
    perfect balance, [p] is everything on one of [p] servers.  Returns
    1.0 when the total load is zero. *)
val imbalance : int array -> float

(** [lpt_plan t ~shard_loads ~p] is the longest-processing-time greedy
    plan: shards sorted by measured load descending, each assigned to the
    currently least-loaded server.  Deterministic (ties broken by shard
    id and rank), so every rank computes the identical plan from the
    all-reduced load vector. *)
val lpt_plan : t -> shard_loads:int array -> p:int -> int array
