(** Open-loop, heavy-tailed request streams.

    Each stream is an independent, deterministic sequence of timestamped
    key-value requests: arrivals are Poisson (exponential interarrival at
    a fixed [rate]) and keys are Zipf-distributed over [0, n_keys), the
    classic model of skewed serving traffic.  {e Open loop} means the
    arrival process never waits for the system: when the servers fall
    behind, requests queue and latency grows — exactly the regime a
    tail-latency benchmark must expose.

    Streams are generated from a SplitMix64 stream keyed by
    [(seed, stream)], so a stream's content is a pure function of its
    configuration: two ranks (or two runs, or a recovered survivor)
    constructing stream [i] draw the identical request sequence.  The
    cursor is a single integer ({!pos}/{!seek}), which is what the
    checkpoint registry records — recovery replays the stream to the
    checkpointed position and resumes bit-identically. *)

(** One request.  [Put d] adds [d] to the key's value — updates commute,
    so the final store contents are independent of delivery order. *)
type op = Get | Put of int

type request = { at : float;  (** arrival time, seconds from stream start *) key : int; op : op }

type t

(** [create ~n_keys ~zipf_s ~rate ~write_ratio ~seed ~stream] builds the
    stream.  [zipf_s] is the Zipf exponent ([0.] = uniform); [rate] is
    arrivals per simulated second; [write_ratio] in [0,1] is the
    probability a request is a [Put].
    @raise Mpisim.Errors.Usage_error on a non-positive [n_keys] or
    [rate], or a [write_ratio] outside [0,1]. *)
val create :
  n_keys:int -> zipf_s:float -> rate:float -> write_ratio:float -> seed:int -> stream:int -> t

(** [next_due t ~now ~limit] pops the next request with
    [at <= now && at < limit], if any.  Arrivals are monotone in [at];
    calling with growing [now] drains the backlog in order. *)
val next_due : t -> now:float -> limit:float -> request option

(** [issued t] counts requests popped so far. *)
val issued : t -> int

(** [pos t] is the stream cursor (= {!issued}); [seek t i] rewinds or
    advances the stream to position [i] by deterministic regeneration. *)
val pos : t -> int

val seek : t -> int -> unit

(** [zipf_pmf ~n_keys ~zipf_s] is the key-probability vector the stream
    samples from (exposed for tests and capacity planning). *)
val zipf_pmf : n_keys:int -> zipf_s:float -> float array
