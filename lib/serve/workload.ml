module Rng = Simnet.Rng

type op = Get | Put of int
type request = { at : float; key : int; op : op }

type t = {
  cdf : float array;
  rate : float;
  write_ratio : float;
  seed : int;
  stream : int;
  mutable rng : Rng.t;
  mutable idx : int;  (* requests popped so far *)
  mutable clock : float;  (* arrival time of [pending] *)
  mutable pending : request option;
}

let zipf_pmf ~n_keys ~zipf_s =
  if n_keys <= 0 then Mpisim.Errors.usage "Workload: n_keys must be positive";
  let w = Array.init n_keys (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) zipf_s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let cdf_of pmf =
  let acc = ref 0.0 in
  Array.map
    (fun p ->
      acc := !acc +. p;
      !acc)
    pmf

let fresh_rng ~seed ~stream = Rng.split (Rng.create (Int64.of_int seed)) stream

let create ~n_keys ~zipf_s ~rate ~write_ratio ~seed ~stream =
  if rate <= 0.0 then Mpisim.Errors.usage "Workload: rate must be positive";
  if write_ratio < 0.0 || write_ratio > 1.0 then
    Mpisim.Errors.usage "Workload: write_ratio must be in [0,1]";
  {
    cdf = cdf_of (zipf_pmf ~n_keys ~zipf_s);
    rate;
    write_ratio;
    seed;
    stream;
    rng = fresh_rng ~seed ~stream;
    idx = 0;
    clock = 0.0;
    pending = None;
  }

(* First index with cdf.(i) >= u. *)
let sample_key t u =
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* Every request consumes exactly four draws, so regeneration is purely
   positional. *)
let gen t =
  let u_dt = Rng.float t.rng in
  let u_key = Rng.float t.rng in
  let u_op = Rng.float t.rng in
  let u_delta = Rng.float t.rng in
  t.clock <- t.clock +. (-.Float.log (1.0 -. u_dt) /. t.rate);
  let key = sample_key t u_key in
  let op =
    if u_op < t.write_ratio then Put (1 + int_of_float (u_delta *. 8.0)) else Get
  in
  { at = t.clock; key; op }

let ensure_pending t = if t.pending = None then t.pending <- Some (gen t)

let next_due t ~now ~limit =
  ensure_pending t;
  match t.pending with
  | Some r when r.at <= now && r.at < limit ->
      t.pending <- None;
      t.idx <- t.idx + 1;
      Some r
  | Some _ | None -> None

let issued t = t.idx
let pos t = t.idx

let seek t i =
  if i < 0 then Mpisim.Errors.usage "Workload.seek: negative position %d" i;
  t.rng <- fresh_rng ~seed:t.seed ~stream:t.stream;
  t.idx <- 0;
  t.clock <- 0.0;
  t.pending <- None;
  for _ = 1 to i do
    ignore (gen t);
    t.idx <- t.idx + 1
  done
