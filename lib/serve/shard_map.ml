type t = { n_shards : int; n_keys : int; owner : int array }

let create ~n_shards ~n_keys ~p =
  if n_shards <= 0 then Mpisim.Errors.usage "Shard_map: n_shards must be positive";
  if n_shards > n_keys then Mpisim.Errors.usage "Shard_map: more shards than keys";
  if p <= 0 then Mpisim.Errors.usage "Shard_map: p must be positive";
  (* contiguous blocks: ranks 0..p-1 each own a run of consecutive shards *)
  { n_shards; n_keys; owner = Array.init n_shards (fun s -> s * p / n_shards) }

let of_owner ~n_keys owner =
  if Array.length owner = 0 then Mpisim.Errors.usage "Shard_map: empty ownership table";
  { n_shards = Array.length owner; n_keys; owner = Array.copy owner }

let n_shards t = t.n_shards

let shard_of_key t k =
  if k < 0 || k >= t.n_keys then Mpisim.Errors.usage "Shard_map: key %d out of range" k;
  k * t.n_shards / t.n_keys

let owner_of_shard t s =
  if s < 0 || s >= t.n_shards then Mpisim.Errors.usage "Shard_map: shard %d out of range" s;
  t.owner.(s)

let owner_of_key t k = t.owner.(shard_of_key t k)

let shards_of t rank =
  List.filter (fun s -> t.owner.(s) = rank) (List.init t.n_shards Fun.id)

let apply_plan t plan =
  if Array.length plan <> t.n_shards then
    Mpisim.Errors.usage "Shard_map: plan covers %d of %d shards" (Array.length plan) t.n_shards;
  Array.blit plan 0 t.owner 0 t.n_shards

let server_loads t ~shard_loads ~p =
  let loads = Array.make p 0 in
  Array.iteri (fun s l -> loads.(t.owner.(s)) <- loads.(t.owner.(s)) + l) shard_loads;
  loads

let imbalance loads =
  let total = Array.fold_left ( + ) 0 loads in
  if total = 0 then 1.0
  else
    let mean = float_of_int total /. float_of_int (Array.length loads) in
    float_of_int (Array.fold_left Int.max 0 loads) /. mean

let lpt_plan t ~shard_loads ~p =
  if Array.length shard_loads <> t.n_shards then
    Mpisim.Errors.usage "Shard_map: %d loads for %d shards" (Array.length shard_loads) t.n_shards;
  let order = Array.init t.n_shards Fun.id in
  Array.sort
    (fun a b ->
      match compare shard_loads.(b) shard_loads.(a) with 0 -> compare a b | c -> c)
    order;
  let bin = Array.make p 0 in
  let plan = Array.make t.n_shards 0 in
  Array.iter
    (fun s ->
      let best = ref 0 in
      for r = 1 to p - 1 do
        if bin.(r) < bin.(!best) then best := r
      done;
      plan.(s) <- !best;
      bin.(!best) <- bin.(!best) + shard_loads.(s))
    order;
  plan
