module Workload = Workload
module Shard_map = Shard_map
module Cache = Cache
module Metrics = Metrics
module K = Kamping.Comm
module D = Mpisim.Datatype
module Op = Mpisim.Op
module Agg = Kamping_plugins.Aggregator
module V = Ds.Vec

type config = {
  n_keys : int;
  n_shards : int;
  zipf_s : float;
  rate : float;
  write_ratio : float;
  duration : float;
  epoch : float;
  tick : float;
  batch_threshold : int;
  flush_interval : float;
  cache_capacity : int;
  rebalance : bool;
  persistent : bool;
  seed : int;
}

let default =
  {
    n_keys = 256;
    n_shards = 12;
    zipf_s = 1.2;
    rate = 1.5e5;
    write_ratio = 0.1;
    duration = 2e-3;
    epoch = 0.5e-3;
    tick = 10e-6;
    batch_threshold = 16;
    flush_interval = 25e-6;
    cache_capacity = 0;
    rebalance = false;
    persistent = false;
    seed = 42;
  }

let validate cfg =
  if cfg.n_keys <= 0 then Mpisim.Errors.usage "Serve: n_keys must be positive";
  if cfg.n_shards <= 0 || cfg.n_shards > cfg.n_keys then
    Mpisim.Errors.usage "Serve: n_shards must be in [1, n_keys]";
  if cfg.duration <= 0.0 then Mpisim.Errors.usage "Serve: duration must be positive";
  if cfg.epoch <= 0.0 then Mpisim.Errors.usage "Serve: epoch must be positive";
  if cfg.tick <= 0.0 then Mpisim.Errors.usage "Serve: tick must be positive";
  if cfg.batch_threshold < 1 then Mpisim.Errors.usage "Serve: batch_threshold must be >= 1";
  if cfg.flush_interval <= 0.0 then Mpisim.Errors.usage "Serve: flush_interval must be positive"

type rank_report = {
  issued : int;
  completed : int;
  cache_hits : int;
  cache_lookups : int;
  latencies : float array;
  imbalance_before : float;
  imbalance_after : float;
  recoveries : int;
  stores : (int * (int * int) list) list;
}

type report = {
  ranks : int;
  issued : int;
  completed : int;
  throughput : float;
  p50 : float;
  p99 : float;
  max_latency : float;
  hit_rate : float;
  imbalance_before : float;
  imbalance_after : float;
  recoveries : int;
  store_digest : int;
  sim_time : float;
}

let n_epochs cfg = Int.max 1 (int_of_float (Float.ceil (cfg.duration /. cfg.epoch)))

(* The phase boundary: measure load (and optionally rebalance) after this
   many epochs.  [None] when the run is too short to have two phases. *)
let boundary cfg =
  let n = n_epochs cfg in
  if n >= 2 then Some (n / 2) else None

(* {2 Wire protocol}

   One item type serves both aggregators: [((kind, key), (id, payload))].
   [id] is a request id in the issuing client's namespace; replies are
   routed by the aggregator's [~src], so ids never collide across ranks. *)

type wire = (int * int) * (int * int)

let wire_dt : wire D.t = D.pair (D.pair D.int D.int) (D.pair D.int D.int)
let k_get = 0
let k_put = 1
let k_get_reply = 2
let k_put_ack = 3
let k_invalidate = 4
let req_tag = 0x5e1
let rep_tag = 0x5e2

(* Fixed per-block service cost (the interrupt/dispatch analogue of a real
   server's per-packet overhead), charged by the receiving handler on top
   of the per-item hash cost.  This is the cost request batching
   amortizes: at threshold 1 the Zipf-head server pays it per request and
   saturates; larger blocks spread it over their items. *)
let block_overhead = 1.0e-6

(* {2 Restartable state}

   Everything a shard needs to move — between ranks at a rebalance, or
   from a checkpoint at recovery — lives here: the store partition, the
   stream cursor, and the epoch counter.  The registry closures capture
   this record, which outlives sessions (and, in resilient mode,
   recovery attempts). *)

type state = {
  cfg : config;
  stores : (int, (int, int) Hashtbl.t) Hashtbl.t;  (* shard -> key -> value *)
  streams : (int, Workload.t) Hashtbl.t;  (* shard -> its request stream *)
  mutable done_epochs : int;
}

let make_state cfg = { cfg; stores = Hashtbl.create 16; streams = Hashtbl.create 16; done_epochs = 0 }

let store_for st shard =
  match Hashtbl.find_opt st.stores shard with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 32 in
      Hashtbl.replace st.stores shard t;
      t

let stream_for st shard =
  match Hashtbl.find_opt st.streams shard with
  | Some w -> w
  | None ->
      let cfg = st.cfg in
      let w =
        Workload.create ~n_keys:cfg.n_keys ~zipf_s:cfg.zipf_s ~rate:cfg.rate
          ~write_ratio:cfg.write_ratio ~seed:cfg.seed ~stream:shard
      in
      Hashtbl.replace st.streams shard w;
      w

let sorted_kvs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let make_registry st =
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"store"
    Serde.Codec.(list (pair int int))
    ~save:(fun ~shard -> sorted_kvs (store_for st shard))
    ~restore:(fun ~shard kvs ->
      let t = store_for st shard in
      Hashtbl.reset t;
      List.iter (fun (k, v) -> Hashtbl.replace t k v) kvs);
  Ckpt.register registry ~name:"stream" Serde.Codec.int
    ~save:(fun ~shard -> Workload.pos (stream_for st shard))
    ~restore:(fun ~shard p -> Workload.seek (stream_for st shard) p);
  Ckpt.register registry ~name:"epoch" Serde.Codec.int
    ~save:(fun ~shard:_ -> st.done_epochs)
    ~restore:(fun ~shard:_ e -> st.done_epochs <- e);
  registry

(* {2 A serving session}

   Per-attempt structures: aggregators, cache, sharer directory, metrics
   and in-flight bookkeeping.  Rebuilt from scratch after a recovery (the
   quiescent epoch boundary guarantees nothing in-flight was lost). *)

type session = {
  kc : K.t;
  cfg : config;
  st : state;
  map : Shard_map.t;
  cache : Cache.t;
  lat : Metrics.t;
  outstanding : (int, float) Hashtbl.t;  (* request id -> absolute arrival time *)
  directory : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* key -> sharer ranks *)
  shard_loads : int array;  (* requests applied per shard since phase start *)
  next_id : int ref;
  completed : int ref;
  req_agg : wire Agg.t;
  rep_agg : wire Agg.t;
}

let make_session cfg st kc map =
  let caching = cfg.cache_capacity > 0 in
  let cache = Cache.create ~capacity:cfg.cache_capacity () in
  let lat = Metrics.create () in
  let outstanding = Hashtbl.create 64 in
  let directory = Hashtbl.create 64 in
  let shard_loads = Array.make cfg.n_shards 0 in
  let completed = ref 0 in
  (* Per-block service time, paid up front by the receiving fiber so that
     queueing delay is visible in both sim_time and reply latency. *)
  let serve_block block =
    K.compute kc (block_overhead +. Kamping.Costs.hash_ops (V.length block))
  in
  (* Client side: absorb replies.  Never touches an aggregator, so it is
     safe to run from inside the server handler's [rep_agg] sends. *)
  let rep_handler ~src:_ block =
    serve_block block;
    V.iter
      (fun ((kind, key), (id, payload)) ->
        if kind = k_invalidate then Cache.invalidate cache key
        else begin
          (match Hashtbl.find_opt outstanding id with
          | Some arrival ->
              Hashtbl.remove outstanding id;
              incr completed;
              Metrics.record lat (K.now kc -. arrival)
          | None -> Mpisim.Errors.usage "Serve: reply for unknown request %d" id);
          if kind = k_get_reply && caching then Cache.insert cache ~key ~value:payload
        end)
      block
  in
  let rep_agg =
    Agg.create ~threshold:cfg.batch_threshold ~tag:rep_tag ~persistent:cfg.persistent kc wire_dt
      ~handler:rep_handler
  in
  (* Server side: apply operations on owned shards, answer via [rep_agg]
     (a different aggregator, so no reentrance). *)
  let req_handler ~src block =
    serve_block block;
    V.iter
      (fun ((kind, key), (id, payload)) ->
        let shard = Shard_map.shard_of_key map key in
        shard_loads.(shard) <- shard_loads.(shard) + 1;
        let store = store_for st shard in
        if kind = k_get then begin
          let v = Option.value (Hashtbl.find_opt store key) ~default:0 in
          if caching then begin
            let sharers =
              match Hashtbl.find_opt directory key with
              | Some s -> s
              | None ->
                  let s = Hashtbl.create 4 in
                  Hashtbl.replace directory key s;
                  s
            in
            Hashtbl.replace sharers src ()
          end;
          Agg.send rep_agg ~dst:src ((k_get_reply, key), (id, v))
        end
        else if kind = k_put then begin
          let v = Option.value (Hashtbl.find_opt store key) ~default:0 in
          Hashtbl.replace store key (v + payload);
          (match Hashtbl.find_opt directory key with
          | Some sharers ->
              Hashtbl.iter
                (fun rank () -> Agg.send rep_agg ~dst:rank ((k_invalidate, key), (0, 0)))
                sharers;
              Hashtbl.remove directory key
          | None -> ());
          Agg.send rep_agg ~dst:src ((k_put_ack, key), (id, 0))
        end
        else Mpisim.Errors.usage "Serve: unexpected request kind %d" kind)
      block
  in
  let req_agg =
    Agg.create ~threshold:cfg.batch_threshold ~tag:req_tag ~persistent:cfg.persistent kc wire_dt
      ~handler:req_handler
  in
  {
    kc;
    cfg;
    st;
    map;
    cache;
    lat;
    outstanding;
    directory;
    shard_loads;
    next_id = ref 0;
    completed;
    req_agg;
    rep_agg;
  }

(* {2 The epoch loop}

   Each epoch covers workload time [e_lo, e_hi) and is anchored at the
   simulated wall clock of its own start ([wall0]), so a recovered
   attempt restarts an epoch with a fresh anchor and identical semantics:
   a request due at workload offset [r.at] is issued once the epoch's
   elapsed wall time reaches [r.at - e_lo], and its latency is measured
   from that arrival instant to its reply.  The final drain runs with
   [elapsed >= len], so every request with [at < e_hi] is issued before
   the two [finish] calls quiesce the round. *)

let run_epoch sess e =
  let cfg = sess.cfg in
  let kc = sess.kc in
  let e_lo = cfg.epoch *. float_of_int e in
  let e_hi = if e = n_epochs cfg - 1 then cfg.duration else cfg.epoch *. float_of_int (e + 1) in
  let len = e_hi -. e_lo in
  let wall0 = K.now kc in
  let last_flush = ref wall0 in
  let me = K.rank kc in
  let streams = List.map (stream_for sess.st) (Shard_map.shards_of sess.map me) in
  let issue r =
    let open Workload in
    let arrival = wall0 +. (r.at -. e_lo) in
    match r.op with
    | Get when Cache.find sess.cache r.key <> None ->
        (* served from the local replica: complete without any traffic *)
        incr sess.completed;
        Metrics.record sess.lat (K.now kc -. arrival)
    | Get | Put _ ->
        let id = !(sess.next_id) in
        incr sess.next_id;
        Hashtbl.replace sess.outstanding id arrival;
        let item =
          match r.op with
          | Get -> ((k_get, r.key), (id, 0))
          | Put d -> ((k_put, r.key), (id, d))
        in
        Agg.send sess.req_agg ~dst:(Shard_map.owner_of_key sess.map r.key) item
  in
  let drain vnow =
    List.iter
      (fun w ->
        let rec go () =
          match Workload.next_due w ~now:vnow ~limit:e_hi with
          | Some r ->
              issue r;
              go ()
          | None -> ()
        in
        go ())
      streams
  in
  let running = ref true in
  while !running do
    Agg.poll sess.req_agg;
    Agg.poll sess.rep_agg;
    let elapsed = K.now kc -. wall0 in
    drain (e_lo +. elapsed);
    if K.now kc -. !last_flush >= cfg.flush_interval then begin
      Agg.flush sess.req_agg;
      Agg.flush sess.rep_agg;
      last_flush := K.now kc
    end;
    if elapsed >= len then running := false else K.compute kc cfg.tick
  done;
  Agg.finish sess.req_agg;
  Agg.finish sess.rep_agg;
  if Hashtbl.length sess.outstanding <> 0 then
    Mpisim.Errors.usage "Serve: %d requests outstanding after quiescence"
      (Hashtbl.length sess.outstanding)

(* {2 Phase accounting and rebalancing} *)

let measure_imbalance sess =
  let kc = sess.kc in
  let global =
    K.allreduce kc D.int Op.int_sum ~send_buf:(V.of_array sess.shard_loads) |> V.to_array
  in
  let loads = Shard_map.server_loads sess.map ~shard_loads:global ~p:(K.size kc) in
  (Shard_map.imbalance loads, global)

(* Migrate every shard whose LPT placement differs from the current one.
   The payload is exactly the checkpoint bundle (store + stream cursor +
   epoch counter), shipped through one collective serialized exchange, so
   migration and recovery share one serialization path. *)
let do_rebalance sess registry global_loads =
  let kc = sess.kc in
  let me = K.rank kc and p = K.size kc in
  let plan = Shard_map.lpt_plan sess.map ~shard_loads:global_loads ~p in
  let outgoing = Array.make p [] in
  for s = Shard_map.n_shards sess.map - 1 downto 0 do
    let cur = Shard_map.owner_of_shard sess.map s in
    if cur = me && plan.(s) <> me then
      outgoing.(plan.(s)) <-
        (s, Bytes.to_string (Ckpt.Registry.save_shard registry ~shard:s)) :: outgoing.(plan.(s))
  done;
  let received = K.alltoallv_serialized kc Serde.Codec.(list (pair int string)) outgoing in
  Array.iter
    (List.iter (fun (s, b) -> Ckpt.Registry.restore_shard registry ~shard:s (Bytes.of_string b)))
    received;
  for s = 0 to Shard_map.n_shards sess.map - 1 do
    if Shard_map.owner_of_shard sess.map s = me && plan.(s) <> me then begin
      Hashtbl.remove sess.st.stores s;
      Hashtbl.remove sess.st.streams s
    end
  done;
  Shard_map.apply_plan sess.map plan;
  (* placement changed: cached values and the sharer directory keep their
     meaning, but we reset them so both phases start from the same cold
     state and the imbalance comparison is clean *)
  Cache.clear sess.cache;
  Hashtbl.reset sess.directory

let finalize sess ~recoveries ~imbalance_before ~imbalance_after =
  let me = K.rank sess.kc in
  let owned = Shard_map.shards_of sess.map me in
  {
    issued = List.fold_left (fun acc s -> acc + Workload.pos (stream_for sess.st s)) 0 owned;
    completed = !(sess.completed);
    cache_hits = Cache.hits sess.cache;
    cache_lookups = Cache.lookups sess.cache;
    latencies = Metrics.samples sess.lat;
    imbalance_before;
    imbalance_after;
    recoveries;
    stores = List.map (fun s -> (s, sorted_kvs (store_for sess.st s))) owned;
  }

(* {2 Drivers} *)

let body cfg comm =
  validate cfg;
  let kc = K.wrap comm in
  let p = K.size kc in
  let st = make_state cfg in
  let registry = make_registry st in
  let map = Shard_map.create ~n_shards:cfg.n_shards ~n_keys:cfg.n_keys ~p in
  let sess = make_session cfg st kc map in
  let imb_before = ref Float.nan in
  let n = n_epochs cfg in
  for e = 0 to n - 1 do
    run_epoch sess e;
    st.done_epochs <- e + 1;
    if boundary cfg = Some (e + 1) then begin
      let imb, global = measure_imbalance sess in
      imb_before := imb;
      if cfg.rebalance then do_rebalance sess registry global;
      Array.fill sess.shard_loads 0 cfg.n_shards 0
    end
  done;
  let imb_after, _ = measure_imbalance sess in
  if Float.is_nan !imb_before then imb_before := imb_after;
  (* quiescent (last epoch finished): retire the standing channels so the
     checker's persistent-leak scan stays clean *)
  Agg.close sess.req_agg;
  Agg.close sess.rep_agg;
  finalize sess ~recoveries:0 ~imbalance_before:!imb_before ~imbalance_after:imb_after

let resilient_body ?policy ?failure_rate ?max_attempts cfg comm =
  validate cfg;
  let kc0 = K.wrap comm in
  let st = make_state cfg in
  let registry = make_registry st in
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards:cfg.n_shards kc0
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      if not restored then begin
        Hashtbl.reset st.stores;
        Hashtbl.reset st.streams;
        st.done_epochs <- 0
      end;
      Ckpt.establish ctx;
      let map =
        Shard_map.of_owner ~n_keys:cfg.n_keys
          (Array.init cfg.n_shards (fun s -> Ckpt.owner_of ctx s))
      in
      let sess = make_session cfg st kc map in
      let n = n_epochs cfg in
      while st.done_epochs < n do
        run_epoch sess st.done_epochs;
        st.done_epochs <- st.done_epochs + 1;
        Ckpt.maybe_checkpoint ctx
      done;
      Agg.close sess.req_agg;
      Agg.close sess.rep_agg;
      finalize sess ~recoveries:(Ckpt.recoveries ctx) ~imbalance_before:Float.nan
        ~imbalance_after:Float.nan)

let digest_of_stores stores =
  let mix h x = ((h * 1000003) lxor x) land max_int in
  List.fold_left
    (fun h (s, kvs) ->
      List.fold_left (fun h (k, v) -> mix (mix h k) v) (mix h s) kvs)
    0x5eed stores

let summarize cfg ~ranks ~sim_time results =
  let reports : rank_report list =
    Array.to_list results |> List.filter_map (function Ok r -> Some r | Error _ -> None)
  in
  if reports = [] then Mpisim.Errors.usage "Serve: no rank survived";
  let by_shard = Hashtbl.create cfg.n_shards in
  List.iter
    (fun (r : rank_report) ->
      List.iter
        (fun (s, kvs) ->
          if Hashtbl.mem by_shard s then
            Mpisim.Errors.usage "Serve: shard %d reported by two ranks" s;
          Hashtbl.replace by_shard s kvs)
        r.stores)
    reports;
  let stores =
    List.init cfg.n_shards (fun s ->
        match Hashtbl.find_opt by_shard s with
        | Some kvs -> (s, kvs)
        | None -> Mpisim.Errors.usage "Serve: shard %d not reported by any rank" s)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let lats = Array.concat (List.map (fun r -> r.latencies) reports) in
  let completed = sum (fun r -> r.completed) in
  let lookups = sum (fun r -> r.cache_lookups) in
  let first = List.hd reports in
  {
    ranks;
    issued = sum (fun r -> r.issued);
    completed;
    throughput = (if sim_time > 0.0 then float_of_int completed /. sim_time else 0.0);
    p50 = Metrics.percentile lats 0.5;
    p99 = Metrics.percentile lats 0.99;
    max_latency = Array.fold_left Float.max 0.0 lats;
    hit_rate =
      (if lookups = 0 then 0.0 else float_of_int (sum (fun r -> r.cache_hits)) /. float_of_int lookups);
    imbalance_before = first.imbalance_before;
    imbalance_after = first.imbalance_after;
    recoveries =
      List.fold_left (fun acc (r : rank_report) -> Int.max acc r.recoveries) 0 reports;
    store_digest = digest_of_stores stores;
    sim_time;
  }

let run ?net ?(ranks = 6) cfg =
  let res = Mpisim.Mpi.run ?net ~ranks (fun comm -> body cfg comm) in
  Array.iter (function Error e -> raise e | Ok _ -> ()) res.Mpisim.Mpi.results;
  summarize cfg ~ranks ~sim_time:res.Mpisim.Mpi.sim_time res.Mpisim.Mpi.results

(* {2 Host-side oracle} *)

let iter_requests cfg f =
  validate cfg;
  for stream = 0 to cfg.n_shards - 1 do
    let w =
      Workload.create ~n_keys:cfg.n_keys ~zipf_s:cfg.zipf_s ~rate:cfg.rate
        ~write_ratio:cfg.write_ratio ~seed:cfg.seed ~stream
    in
    let rec go () =
      match Workload.next_due w ~now:Float.infinity ~limit:cfg.duration with
      | Some r ->
          f r;
          go ()
      | None -> ()
    in
    go ()
  done

let expected_stores cfg =
  let store = Hashtbl.create cfg.n_keys in
  iter_requests cfg (fun r ->
      match r.Workload.op with
      | Workload.Get -> ()
      | Workload.Put d ->
          Hashtbl.replace store r.Workload.key
            (Option.value (Hashtbl.find_opt store r.Workload.key) ~default:0 + d));
  let by_shard = Array.make cfg.n_shards [] in
  Hashtbl.iter
    (fun k v ->
      let s = k * cfg.n_shards / cfg.n_keys in
      by_shard.(s) <- (k, v) :: by_shard.(s))
    store;
  List.init cfg.n_shards (fun s -> (s, List.sort compare by_shard.(s)))

let expected_issued cfg =
  let n = ref 0 in
  iter_requests cfg (fun _ -> incr n);
  !n

let expected_store_digest cfg = digest_of_stores (expected_stores cfg)
