type t = {
  capacity : int;
  table : (int, int) Hashtbl.t;
  mutable lookups : int;
  mutable hits : int;
}

let create ~capacity () =
  if capacity < 0 then Mpisim.Errors.usage "Cache: negative capacity %d" capacity;
  { capacity; table = Hashtbl.create (max 16 capacity); lookups = 0; hits = 0 }

let enabled t = t.capacity > 0

let find t k =
  if t.capacity = 0 then None
  else begin
    t.lookups <- t.lookups + 1;
    match Hashtbl.find_opt t.table k with
    | Some v ->
        t.hits <- t.hits + 1;
        Some v
    | None -> None
  end

let insert t ~key ~value =
  if t.capacity > 0 then begin
    if (not (Hashtbl.mem t.table key)) && Hashtbl.length t.table >= t.capacity then begin
      (* evict the largest (Zipf-coldest) key — deterministic *)
      let victim = Hashtbl.fold (fun k _ acc -> Int.max k acc) t.table min_int in
      Hashtbl.remove t.table victim
    end;
    Hashtbl.replace t.table key value
  end

let invalidate t k = Hashtbl.remove t.table k
let clear t = Hashtbl.reset t.table
let lookups t = t.lookups
let hits t = t.hits
