(** Discrete-event simulation engine with cooperative fibers.

    Every simulated MPI rank runs as a fiber (an effects-based cooperative
    thread).  Fibers advance a shared simulated clock by issuing {!delay}
    (modelling local computation or transfer costs) and block on external
    events with {!suspend} (modelling a blocking receive).  Events scheduled
    for the same simulated time fire in scheduling order, so a run is fully
    deterministic.

    If the event queue drains while fibers are still parked, {!run} raises
    {!Deadlock} listing the parked fibers — the simulator's equivalent of a
    hung MPI job, and a debugging aid the paper lists as a desired feature
    ("a strong debug mode"). *)

type t
type fiber

(** Raised inside a fiber that was killed via {!kill} (used for failure
    injection by the ULFM layer). *)
exception Killed

(** Raised by {!run} when no event is pending but fibers are parked.
    Carries the labels of the parked fibers. *)
exception Deadlock of string list

(** Raised by {!run} when the simulated clock passes the {!set_deadline}
    deadline or the executed-event count exceeds {!set_max_events} — the
    watchdog that turns a livelocking schedule into a diagnosable failure
    instead of a hung test run. *)
exception Limit_exceeded of { what : string; time : float; events : int }

(** [create ()] is a fresh engine with clock 0. *)
val create : unit -> t

(** [now t] is the current simulated time in seconds. *)
val now : t -> float

(** [events_processed t] counts events executed so far (a determinism and
    progress diagnostic). *)
val events_processed : t -> int

(** [live_fibers t] counts fibers currently running or parked. *)
val live_fibers : t -> int

(** [tracked_fibers t] is the size of the internal fiber table.  Finished
    fibers are pruned once they dominate the table, so this stays within a
    small constant factor of {!live_fibers} (the scale tests assert it) —
    the pre-refactor engine kept every fiber ever spawned. *)
val tracked_fibers : t -> int

(** [schedule t ~delay f] runs callback [f] at time [now t +. delay].
    Unlike a fiber, a callback must not block. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [spawn t ~label ~tag f] creates a fiber executing [f], starting at the
    current simulated time.  An exception escaping [f] (other than {!Killed})
    propagates out of {!run}.  [tag] (default [-1]) is an opaque integer
    reported to the {{!set_park_observer} park observer}; the MPI layer tags
    rank fibers with their world rank and leaves helpers at [-1]. *)
val spawn : t -> ?label:string -> ?tag:int -> (unit -> unit) -> fiber

(** [kill t fiber] marks [fiber] dead: its next resumption raises {!Killed}
    inside it.  A parked fiber stays parked until something resumes it (the
    MPI layer fails parked operations explicitly on failure injection). *)
val kill : t -> fiber -> unit

(** [alive fiber] is false once the fiber finished or was killed. *)
val alive : fiber -> bool

(** [is_parked fiber] is true while the fiber is suspended waiting for an
    external event — at quiesce time, the parked fibers are the deadlocked
    ones (used by the MPI layer's deadlock diagnosis). *)
val is_parked : fiber -> bool

(** [label fiber] is the label given at spawn time. *)
val label : fiber -> string

(** [run t] executes events until the queue is empty.
    @raise Deadlock if fibers remain parked with no pending event. *)
val run : t -> unit

(** {1 Observation}

    A park observer sees every fiber suspension interval: it fires at the
    moment a parked fiber resumes, with the park time, resume time, the
    fiber's spawn [tag], and whether the park was a {!delay} (modelled
    computation) or a {!suspend} (a genuine wait for an external event).
    Observation is passive — it cannot alter scheduling, and costs one
    option check per resumption when disabled.  Used by the tracing
    subsystem to attribute waiting time to ranks. *)

type park_kind =
  | Park_delay  (** the fiber was advancing its own clock via [delay] *)
  | Park_suspend  (** the fiber was blocked on an external event *)

type park_observer =
  tag:int -> kind:park_kind -> parked_at:float -> resumed_at:float -> unit

(** [set_park_observer t (Some f)] installs [f]; [None] removes it. *)
val set_park_observer : t -> park_observer option -> unit

(** {1 Schedule exploration}

    Events scheduled for the same simulated time form a {e ready set}: MPI
    semantics permit any of them to run next, and the incumbent engine
    always runs them in scheduling (seq) order.  A {e chooser} intercepts
    exactly these don't-care points — same-time event order ([Ready]),
    wildcard-receive message matching ([Match]), completion order among
    simultaneously ready requests ([Completion]), and chaos-layer draws
    ([Chaos]) — and picks one candidate by index.  A chooser that always
    answers [0] reproduces the incumbent schedule bit-identically, which is
    what makes exploration a pure observer in its default strategy. *)

type decision_kind =
  | Ready  (** which same-time event fires next *)
  | Match  (** which source a wildcard receive matches *)
  | Completion  (** which complete request a wait-any observes *)
  | Chaos  (** latency-jitter / kill-time draws of the chaos layer *)

(** A chooser receives the candidate identifiers (fiber tags for [Ready],
    source ranks for [Match], request indices for [Completion]) and returns
    the index of its pick.  Out-of-range answers are clamped. *)
type chooser = kind:decision_kind -> ids:int array -> int

(** [set_chooser t (Some c)] routes every nondeterminism point through [c];
    [None] (the default) keeps the incumbent deterministic schedule with no
    ready-set bookkeeping at all. *)
val set_chooser : t -> chooser option -> unit

(** [choose t ~kind ~ids] consults the installed chooser; with no chooser
    or fewer than two candidates it returns [0].  Subsystems with their own
    nondeterminism points ([Match], [Completion]) call this directly. *)
val choose : t -> kind:decision_kind -> ids:int array -> int

(** [set_deadline t d] makes {!run} raise {!Limit_exceeded} when the
    simulated clock passes [d] seconds (default: no deadline). *)
val set_deadline : t -> float -> unit

(** [set_max_events t n] bounds the number of executed events (default:
    [max_int]) — catches livelocks that spin without advancing time. *)
val set_max_events : t -> int -> unit

(** {1 Fiber-side operations}

    These must be called from inside a fiber spawned on the engine. *)

(** [delay t dt] advances this fiber's time by [dt] simulated seconds,
    yielding to other events in between. *)
val delay : t -> float -> unit

(** [yield t] lets all other events scheduled for the current time run. *)
val yield : t -> unit

(** A one-shot handle used to wake a suspended fiber. *)
type 'a resumer

(** [suspend t register] parks the calling fiber and passes a {!resumer} to
    [register]; the fiber resumes when {!resume} or {!fail} is invoked on
    it.  The registered resumer must be triggered at most once; later
    triggers are ignored. *)
val suspend : t -> ('a resumer -> unit) -> 'a

(** [resume r v] wakes the suspended fiber with value [v] at the current
    simulated time. *)
val resume : 'a resumer -> 'a -> unit

(** [fail r exn] wakes the suspended fiber by raising [exn] at its suspension
    point. *)
val fail : 'a resumer -> exn -> unit
