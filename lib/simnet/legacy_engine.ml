(* The pre-refactor discrete-event engine, frozen verbatim (modulo the
   queue module being the frozen {!Binheap}).  It exists so the engine
   bench (lib/experiments/engine_exp.ml) can measure the calendar-queue
   engine against the exact code it replaced, and so schedule-equality
   claims ("the refactor replays old schedules bit-identically") are
   testable against the real old semantics rather than a reconstruction.
   Do not optimize this module: its value is that it is the old code. *)

open Effect
open Effect.Deep

exception Killed
exception Deadlock of string list

exception Limit_exceeded of { what : string; time : float; events : int }

type fiber_state = Running | Parked | Done | Dead

type fiber = { flabel : string; ftag : int; mutable state : fiber_state }

type park_kind = Park_delay | Park_suspend

type park_observer =
  tag:int -> kind:park_kind -> parked_at:float -> resumed_at:float -> unit

type decision_kind = Ready | Match | Completion | Chaos

type chooser = kind:decision_kind -> ids:int array -> int

(* Queue entries carry the tag of the fiber they will resume (or -1 for
   detached callbacks) so a chooser can make owner-aware decisions (PCT
   priorities are per-owner). *)
type t = {
  mutable clock : float;
  queue : (int * (unit -> unit)) Binheap.t;
  mutable seq : int;
  mutable events : int;
  mutable next_fid : int;
  mutable fibers : fiber list; (* for deadlock diagnostics *)
  mutable park_observer : park_observer option;
  mutable chooser : chooser option;
  mutable deadline : float;
  mutable max_events : int;
}

type 'a resumer = { deliver : ('a, exn) result -> unit }

(* Effects performed by fiber code.  The engine value travels inside the
   effect payload so that one handler definition serves every engine. *)
type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * ('a resumer -> unit) -> 'a Effect.t

let create () =
  { clock = 0.0; queue = Binheap.create (); seq = 0; events = 0; next_fid = 0; fibers = [];
    park_observer = None; chooser = None; deadline = infinity; max_events = max_int }

let set_park_observer t obs = t.park_observer <- obs
let set_chooser t c = t.chooser <- c
let set_deadline t d = t.deadline <- d
let set_max_events t n = t.max_events <- n

let choose t ~kind ~ids =
  let n = Array.length ids in
  if n <= 1 then 0
  else
    match t.chooser with
    | None -> 0
    | Some c ->
        let i = c ~kind ~ids in
        if i < 0 then 0 else if i >= n then n - 1 else i

let notify_park t fiber kind parked_at =
  match t.park_observer with
  | None -> ()
  | Some f ->
      f ~tag:fiber.ftag ~kind ~parked_at ~resumed_at:t.clock

let now t = t.clock
let events_processed t = t.events

let push ?(owner = -1) t ~at f =
  t.seq <- t.seq + 1;
  Binheap.push t.queue ~time:at ~seq:t.seq (owner, f)

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Legacy_engine.schedule: negative delay";
  push t ~at:(t.clock +. delay) f

let alive fiber = fiber.state = Running || fiber.state = Parked
let is_parked fiber = fiber.state = Parked
let label fiber = fiber.flabel

let kill _t fiber = if alive fiber then fiber.state <- Dead

let spawn t ?(label = "fiber") ?(tag = -1) f =
  t.next_fid <- t.next_fid + 1;
  let fiber =
    { flabel = Printf.sprintf "%s#%d" label t.next_fid; ftag = tag; state = Running }
  in
  t.fibers <- fiber :: t.fibers;
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> if fiber.state <> Dead then fiber.state <- Done);
      exnc =
        (fun e ->
          match e with
          | Killed -> fiber.state <- Dead
          | e ->
              fiber.state <- Dead;
              raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock in
                  push ~owner:fiber.ftag t ~at:(t.clock +. d) (fun () ->
                      if fiber.state = Dead then discontinue k Killed
                      else begin
                        notify_park t fiber Park_delay parked_at;
                        fiber.state <- Running;
                        continue k ()
                      end))
          | Suspend (t, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock in
                  let used = ref false in
                  let deliver result =
                    if not !used then begin
                      used := true;
                      push ~owner:fiber.ftag t ~at:t.clock (fun () ->
                          if fiber.state = Dead then discontinue k Killed
                          else begin
                            notify_park t fiber Park_suspend parked_at;
                            fiber.state <- Running;
                            match result with
                            | Ok v -> continue k v
                            | Error e -> discontinue k e
                          end)
                    end
                  in
                  register { deliver })
          | _ -> None);
    }
  in
  push ~owner:fiber.ftag t ~at:t.clock (fun () -> match_with f () handler);
  fiber

let delay t dt =
  if dt < 0.0 then invalid_arg "Legacy_engine.delay: negative delay";
  perform (Delay (t, dt))

let yield t = perform (Delay (t, 0.0))
let suspend t register = perform (Suspend (t, register))
let resume r v = r.deliver (Ok v)
let fail r e = r.deliver (Error e)

let run t =
  let exec f =
    t.events <- t.events + 1;
    if t.events > t.max_events then
      raise (Limit_exceeded { what = "event budget"; time = t.clock; events = t.events });
    f ()
  in
  let rec loop () =
    match Binheap.pop_min t.queue with
    | Some (time, seq, (_owner, f)) ->
        if time > t.deadline then
          raise (Limit_exceeded
                   { what = "simulated-time deadline"; time; events = t.events });
        t.clock <- time;
        (match t.chooser with
        | None -> exec f
        | Some _ ->
            let rest = ref [] in
            let rec gather () =
              match Binheap.peek_time t.queue with
              | Some pt when pt = time -> (
                  match Binheap.pop_min t.queue with
                  | Some (_, s, e) ->
                      rest := (s, e) :: !rest;
                      gather ()
                  | None -> ())
              | _ -> ()
            in
            gather ();
            (match List.rev !rest with
            | [] -> exec f
            | more ->
                let all = Array.of_list ((seq, (_owner, f)) :: more) in
                let ids = Array.map (fun (_, (o, _)) -> o) all in
                let pick = choose t ~kind:Ready ~ids in
                Array.iteri
                  (fun i (s, e) ->
                    if i <> pick then Binheap.push t.queue ~time ~seq:s e)
                  all;
                let _, (_, g) = all.(pick) in
                exec g));
        loop ()
    | None ->
        let parked = List.filter (fun f -> f.state = Parked) t.fibers in
        if parked <> [] then raise (Deadlock (List.rev_map label parked))
  in
  loop ()
