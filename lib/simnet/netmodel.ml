type params = {
  latency : float;
  byte_time : float;
  injection_byte_time : float;
  send_overhead : float;
  recv_overhead : float;
  memcpy_byte_time : float;
  setup_overhead : float;
}

let default =
  {
    latency = 2.0e-6;
    byte_time = 8.0e-11 (* 12.5 GB/s *);
    injection_byte_time = 8.0e-11;
    send_overhead = 0.5e-6;
    recv_overhead = 0.5e-6;
    memcpy_byte_time = 1.0e-10;
    setup_overhead = 0.0;
  }

let low_latency = { default with latency = 0.5e-6; send_overhead = 0.2e-6; recv_overhead = 0.2e-6 }

let intra_node =
  {
    latency = 0.3e-6;
    byte_time = 2.5e-11 (* 40 GB/s shared memory *);
    injection_byte_time = 2.5e-11;
    send_overhead = 0.2e-6;
    recv_overhead = 0.2e-6;
    memcpy_byte_time = 1.0e-10;
    setup_overhead = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Tiered fabric description (lib/topology builds these).              *)
(* ------------------------------------------------------------------ *)

type fabric = {
  f_node_of : int array;
  f_rack_of : int array;
  f_node : params;
  f_rack : params;
  f_core : params;
  f_uplinks : int;
}

let validate_fabric f ~ranks =
  if Array.length f.f_node_of <> ranks then
    invalid_arg "Netmodel: fabric node map length differs from rank count";
  let nodes = Array.length f.f_rack_of in
  if nodes = 0 then invalid_arg "Netmodel: fabric has no nodes";
  Array.iter
    (fun n -> if n < 0 || n >= nodes then invalid_arg "Netmodel: fabric node id out of range")
    f.f_node_of;
  Array.iter
    (fun r -> if r < 0 then invalid_arg "Netmodel: fabric rack id negative")
    f.f_rack_of;
  if f.f_uplinks < 0 then invalid_arg "Netmodel: fabric uplink count negative"

type t = {
  p : params;
  intra : (params * int) option;  (* (intra-node params, node size) *)
  fabric : fabric option;  (* general tiered fabric; [None] = the two legacy shapes *)
  uplink_free : float array array;  (* node -> uplink port -> busy-until *)
  egress_free : float array;
  ingress_free : float array;
}

let create p ~ranks =
  if ranks <= 0 then invalid_arg "Netmodel.create: ranks must be positive";
  {
    p;
    intra = None;
    fabric = None;
    uplink_free = [||];
    egress_free = Array.make ranks 0.0;
    ingress_free = Array.make ranks 0.0;
  }

let create_hierarchical ~inter ~intra ~node_size ~ranks =
  if node_size <= 0 then invalid_arg "Netmodel.create_hierarchical: node_size must be positive";
  let t = create inter ~ranks in
  { t with intra = Some (intra, node_size) }

let create_fabric f ~ranks =
  validate_fabric f ~ranks;
  let t = create f.f_core ~ranks in
  let nodes = Array.length f.f_rack_of in
  let uplink_free =
    if f.f_uplinks = 0 then [||]
    else Array.init nodes (fun _ -> Array.make f.f_uplinks 0.0)
  in
  { t with fabric = Some f; uplink_free }

let params t = t.p

(* Node id of a world rank: explicit placement on a fabric, [rank /
   node_size] on the legacy two-tier model, one rank per node on a flat
   fabric (every rank is its own shared-memory domain). *)
let node_of t r =
  match t.fabric with
  | Some f -> f.f_node_of.(r)
  | None -> ( match t.intra with Some (_, node_size) -> r / node_size | None -> r)

let rack_of_rank t r =
  match t.fabric with Some f -> f.f_rack_of.(f.f_node_of.(r)) | None -> 0

let fabric_params f ~src_node ~dst_node =
  if src_node = dst_node then f.f_node
  else if f.f_rack_of.(src_node) = f.f_rack_of.(dst_node) then f.f_rack
  else f.f_core

let params_between t ~src ~dst =
  match t.fabric with
  | Some f -> fabric_params f ~src_node:f.f_node_of.(src) ~dst_node:f.f_node_of.(dst)
  | None -> (
      match t.intra with
      | Some (intra, node_size) when src / node_size = dst / node_size -> intra
      | Some _ | None -> t.p)

let local_compute_cost t ~bytes = float_of_int bytes *. t.p.memcpy_byte_time

(* ------------------------------------------------------------------ *)
(* Cost-prediction helpers (LogGP terms) for the collective-algorithm  *)
(* selection layer.  These mirror [transfer] exactly: a single         *)
(* uncongested message costs                                           *)
(*   send_overhead + b*injection + latency + b*byte_time + recv_ovh.   *)
(* ------------------------------------------------------------------ *)

let startup_cost p = p.send_overhead +. p.latency +. p.recv_overhead
let per_byte_cost p = p.injection_byte_time +. p.byte_time
let msg_cost p ~bytes = startup_cost p +. (float_of_int bytes *. per_byte_cost p)

let params_for_group t group =
  match t.fabric with
  | Some f when Array.length group > 0 ->
      let node0 = f.f_node_of.(group.(0)) in
      if Array.for_all (fun g -> f.f_node_of.(g) = node0) group then f.f_node
      else begin
        let rack0 = f.f_rack_of.(node0) in
        if Array.for_all (fun g -> f.f_rack_of.(f.f_node_of.(g)) = rack0) group then f.f_rack
        else f.f_core
      end
  | Some _ | None -> (
      match t.intra with
      | Some (intra, node_size) when Array.length group > 0 ->
          let node0 = group.(0) / node_size in
          if Array.for_all (fun g -> g / node_size = node0) group then intra else t.p
      | Some _ | None -> t.p)

(* ------------------------------------------------------------------ *)
(* Topology-aware group profile: what a collective spanning nodes      *)
(* should plan with instead of the single pessimistic parameter set.   *)
(* ------------------------------------------------------------------ *)

type hier_profile = {
  h_intra : params;
  h_inter : params;
  h_nodes : int;
  h_max_per_node : int;
}

(* Only tiered fabrics get a profile: the legacy two-tier (?node) model
   deliberately keeps its exact pre-topology planning behavior, and a flat
   fabric has nothing to exploit. *)
let hier_for_group t group =
  match t.fabric with
  | None -> None
  | Some f ->
      if Array.length group = 0 then None
      else begin
        (* Count distinct nodes and the heaviest node's population. *)
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun g ->
            let nd = f.f_node_of.(g) in
            Hashtbl.replace counts nd (1 + Option.value ~default:0 (Hashtbl.find_opt counts nd)))
          group;
        let nodes = Hashtbl.length counts in
        if nodes <= 1 then None (* single node: params_for_group already exact *)
        else begin
          let mpn = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
          Some
            {
              h_intra = f.f_node;
              h_inter = params_for_group t group;
              h_nodes = nodes;
              h_max_per_node = mpn;
            }
        end
      end

(* Earliest-free uplink port of [node]; deterministic argmin (first of the
   equally free ports wins). *)
let pick_uplink ports =
  let best = ref 0 in
  for i = 1 to Array.length ports - 1 do
    if ports.(i) < ports.(!best) then best := i
  done;
  !best

let transfer t ~now ~src ~dst ~bytes ~pack_factor =
  let p = params_between t ~src ~dst in
  let fbytes = float_of_int bytes *. pack_factor in
  if src = dst then begin
    (* Local delivery: a single memcpy, no port involvement. *)
    let done_at = now +. p.send_overhead +. (fbytes *. p.memcpy_byte_time) in
    (done_at, done_at)
  end
  else begin
    (* Inter-node messages on a fabric with a finite uplink count also
       serialize on the source node's shared uplink ports (the fat-tree
       oversubscription effect); intra-node traffic never touches them. *)
    let uplink =
      match t.fabric with
      | Some f when f.f_uplinks > 0 && f.f_node_of.(src) <> f.f_node_of.(dst) ->
          let ports = t.uplink_free.(f.f_node_of.(src)) in
          Some (ports, pick_uplink ports)
      | Some _ | None -> None
    in
    let start = Float.max now t.egress_free.(src) in
    let start =
      match uplink with Some (ports, i) -> Float.max start ports.(i) | None -> start
    in
    let injected = start +. p.send_overhead +. (fbytes *. p.injection_byte_time) in
    t.egress_free.(src) <- injected;
    (match uplink with Some (ports, i) -> ports.(i) <- injected | None -> ());
    let wire_arrival = injected +. p.latency +. (fbytes *. p.byte_time) in
    let drain_start = Float.max wire_arrival t.ingress_free.(dst) in
    let available = drain_start +. p.recv_overhead in
    t.ingress_free.(dst) <- available;
    (injected, available)
  end

(* ------------------------------------------------------------------ *)
(* Environment spec parser (MPISIM_TOPOLOGY).                          *)
(* ------------------------------------------------------------------ *)

(* Specs:
     "two:<node_size>"                        two-tier, default params
     "fat:<node_size>:<nodes_per_rack>[:<uplinks>]"
                                              three-tier fat tree
   Block placement (rank r on node r / node_size).  Unknown specs raise
   [Invalid_argument] so a typo in the environment fails loudly. *)
let fabric_of_spec ~ranks spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Netmodel.fabric_of_spec: bad spec %S (expected two:<node_size> or \
          fat:<node_size>:<nodes_per_rack>[:<uplinks>])"
         spec)
  in
  let int_of s = match int_of_string_opt (String.trim s) with Some i when i > 0 -> i | _ -> fail () in
  let nodes_for node_size = (ranks + node_size - 1) / node_size in
  let block node_size = Array.init ranks (fun r -> r / node_size) in
  match String.split_on_char ':' spec with
  | [ "two"; ns ] ->
      let node_size = int_of ns in
      {
        f_node_of = block node_size;
        f_rack_of = Array.make (nodes_for node_size) 0;
        f_node = intra_node;
        f_rack = default;
        f_core = default;
        f_uplinks = 0;
      }
  | "fat" :: ns :: npr :: rest ->
      let node_size = int_of ns and nodes_per_rack = int_of npr in
      let uplinks = match rest with [] -> 0 | [ u ] -> int_of u | _ -> fail () in
      let nodes = nodes_for node_size in
      {
        f_node_of = block node_size;
        f_rack_of = Array.init nodes (fun n -> n / nodes_per_rack);
        f_node = intra_node;
        f_rack = low_latency;
        f_core = default;
        f_uplinks = uplinks;
      }
  | _ -> fail ()
