type params = {
  latency : float;
  byte_time : float;
  injection_byte_time : float;
  send_overhead : float;
  recv_overhead : float;
  memcpy_byte_time : float;
  setup_overhead : float;
}

let default =
  {
    latency = 2.0e-6;
    byte_time = 8.0e-11 (* 12.5 GB/s *);
    injection_byte_time = 8.0e-11;
    send_overhead = 0.5e-6;
    recv_overhead = 0.5e-6;
    memcpy_byte_time = 1.0e-10;
    setup_overhead = 0.0;
  }

let low_latency = { default with latency = 0.5e-6; send_overhead = 0.2e-6; recv_overhead = 0.2e-6 }

let intra_node =
  {
    latency = 0.3e-6;
    byte_time = 2.5e-11 (* 40 GB/s shared memory *);
    injection_byte_time = 2.5e-11;
    send_overhead = 0.2e-6;
    recv_overhead = 0.2e-6;
    memcpy_byte_time = 1.0e-10;
    setup_overhead = 0.0;
  }

type t = {
  p : params;
  intra : (params * int) option;  (* (intra-node params, node size) *)
  egress_free : float array;
  ingress_free : float array;
}

let create p ~ranks =
  if ranks <= 0 then invalid_arg "Netmodel.create: ranks must be positive";
  { p; intra = None; egress_free = Array.make ranks 0.0; ingress_free = Array.make ranks 0.0 }

let create_hierarchical ~inter ~intra ~node_size ~ranks =
  if node_size <= 0 then invalid_arg "Netmodel.create_hierarchical: node_size must be positive";
  let t = create inter ~ranks in
  { t with intra = Some (intra, node_size) }

let params t = t.p

let params_between t ~src ~dst =
  match t.intra with
  | Some (intra, node_size) when src / node_size = dst / node_size -> intra
  | Some _ | None -> t.p

let local_compute_cost t ~bytes = float_of_int bytes *. t.p.memcpy_byte_time

(* ------------------------------------------------------------------ *)
(* Cost-prediction helpers (LogGP terms) for the collective-algorithm  *)
(* selection layer.  These mirror [transfer] exactly: a single         *)
(* uncongested message costs                                           *)
(*   send_overhead + b*injection + latency + b*byte_time + recv_ovh.   *)
(* ------------------------------------------------------------------ *)

let startup_cost p = p.send_overhead +. p.latency +. p.recv_overhead
let per_byte_cost p = p.injection_byte_time +. p.byte_time
let msg_cost p ~bytes = startup_cost p +. (float_of_int bytes *. per_byte_cost p)

let params_for_group t group =
  match t.intra with
  | Some (intra, node_size) when Array.length group > 0 ->
      let node0 = group.(0) / node_size in
      if Array.for_all (fun g -> g / node_size = node0) group then intra else t.p
  | Some _ | None -> t.p

let transfer t ~now ~src ~dst ~bytes ~pack_factor =
  let p = params_between t ~src ~dst in
  let fbytes = float_of_int bytes *. pack_factor in
  if src = dst then begin
    (* Local delivery: a single memcpy, no port involvement. *)
    let done_at = now +. p.send_overhead +. (fbytes *. p.memcpy_byte_time) in
    (done_at, done_at)
  end
  else begin
    let start = Float.max now t.egress_free.(src) in
    let injected = start +. p.send_overhead +. (fbytes *. p.injection_byte_time) in
    t.egress_free.(src) <- injected;
    let wire_arrival = injected +. p.latency +. (fbytes *. p.byte_time) in
    let drain_start = Float.max wire_arrival t.ingress_free.(dst) in
    let available = drain_start +. p.recv_overhead in
    t.ingress_free.(dst) <- available;
    (injected, available)
  end
