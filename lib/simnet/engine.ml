(* Discrete-event engine on the exact-order calendar queue ({!Pqueue}).

   The pre-refactor engine is frozen verbatim as {!Legacy_engine}; this
   rewrite keeps its observable semantics bit-identical (same (time, seq)
   execution order, same chooser candidate order, same Deadlock /
   Limit_exceeded behaviour) while fixing the structural costs the scale
   tests exposed:

   - the event queue is the calendar queue: O(1) amortized push/pop with
     unboxed float keys instead of an O(log n) heap of boxed entries;
   - the simulated clock lives in a one-element flat float array
     ([t.clock]), so advancing it and computing [clock + delay] on push
     never box a float (mixed-record float fields box on every store in
     non-flambda OCaml; float-array elements do not);
   - the steady-state event loop allocates nothing: pop writes into
     scratch cells, deadline checks compare unboxed, and queue entries
     carry the owner tag natively instead of an [(owner, fn)] tuple;
   - finished fibers are pruned: the fiber table is a vector compacted
     (in spawn order) once dead entries dominate, so a long-running
     simulation no longer accretes an unbounded fiber list;
   - the host profiler ({!Profile}) observes the run when enabled and
     costs one immediate compare per [run] when off. *)

open Effect
open Effect.Deep

exception Killed
exception Deadlock of string list

exception Limit_exceeded of { what : string; time : float; events : int }

type fiber_state = Running | Parked | Done | Dead

type fiber = { flabel : string; ftag : int; mutable state : fiber_state }

type park_kind = Park_delay | Park_suspend

type park_observer =
  tag:int -> kind:park_kind -> parked_at:float -> resumed_at:float -> unit

type decision_kind = Ready | Match | Completion | Chaos

type chooser = kind:decision_kind -> ids:int array -> int

(* Queue entries carry the tag of the fiber they will resume (or -1 for
   detached callbacks) so a chooser can make owner-aware decisions (PCT
   priorities are per-owner). *)
type t = {
  clock : float array; (* one-element cell: flat float storage, no boxing *)
  queue : Pqueue.t;
  mutable seq : int;
  mutable events : int;
  mutable next_fid : int;
  fibers : fiber Ds.Vec.t; (* spawn order; compacted, for deadlock diagnostics *)
  mutable live : int; (* fibers in state Running | Parked *)
  mutable park_observer : park_observer option;
  mutable chooser : chooser option;
  mutable deadline : float;
  mutable max_events : int;
  (* chooser-mode ready-set gather scratch (reused across decisions) *)
  g_seqs : int Ds.Vec.t;
  g_owners : int Ds.Vec.t;
  g_fns : Pqueue.event Ds.Vec.t;
}

type 'a resumer = { deliver : ('a, exn) result -> unit }

(* Effects performed by fiber code.  The engine value travels inside the
   effect payload so that one handler definition serves every engine. *)
type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * ('a resumer -> unit) -> 'a Effect.t

let create () =
  { clock = [| 0.0 |]; queue = Pqueue.create (); seq = 0; events = 0; next_fid = 0;
    fibers = Ds.Vec.create (); live = 0; park_observer = None; chooser = None;
    deadline = infinity; max_events = max_int;
    g_seqs = Ds.Vec.create (); g_owners = Ds.Vec.create (); g_fns = Ds.Vec.create () }

let set_park_observer t obs = t.park_observer <- obs
let set_chooser t c = t.chooser <- c
let set_deadline t d = t.deadline <- d
let set_max_events t n = t.max_events <- n

let choose t ~kind ~ids =
  let n = Array.length ids in
  if n <= 1 then 0
  else
    match t.chooser with
    | None -> 0
    | Some c ->
        let i = c ~kind ~ids in
        if i < 0 then 0 else if i >= n then n - 1 else i

let notify_park t fiber kind parked_at =
  match t.park_observer with
  | None -> ()
  | Some f ->
      f ~tag:fiber.ftag ~kind ~parked_at ~resumed_at:t.clock.(0)

let now t = t.clock.(0)
let events_processed t = t.events
let live_fibers t = t.live
let tracked_fibers t = Ds.Vec.length t.fibers

(* [owner] is a required label here: an optional argument would allocate
   a [Some] block on every scheduling operation. *)
let push t ~owner ~delay f =
  t.seq <- t.seq + 1;
  Pqueue.push_after t.queue ~base:t.clock ~delay ~seq:t.seq ~owner f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  push t ~owner:(-1) ~delay f

let alive fiber = fiber.state = Running || fiber.state = Parked
let is_parked fiber = fiber.state = Parked
let label fiber = fiber.flabel

(* Dead-fiber pruning: keep live entries in spawn order, drop the rest.
   Triggered only once dead fibers dominate a non-trivial table, so the
   amortized cost per retired fiber is O(1). *)
let compact_fibers t =
  let n = Ds.Vec.length t.fibers in
  if n > 64 && t.live * 2 < n then begin
    let kept = ref 0 in
    for i = 0 to n - 1 do
      let f = Ds.Vec.get t.fibers i in
      if alive f then begin
        Ds.Vec.set t.fibers !kept f;
        incr kept
      end
    done;
    if !kept < n then Ds.Vec.resize t.fibers !kept (Ds.Vec.get t.fibers 0)
  end

(* Every transition out of Running/Parked goes through here so the live
   count stays exact. *)
let retire t fiber state =
  if alive fiber then begin
    fiber.state <- state;
    t.live <- t.live - 1;
    compact_fibers t
  end
  else fiber.state <- state

let kill t fiber = if alive fiber then retire t fiber Dead

let spawn t ?(label = "fiber") ?(tag = -1) f =
  t.next_fid <- t.next_fid + 1;
  let fiber =
    { flabel = Printf.sprintf "%s#%d" label t.next_fid; ftag = tag; state = Running }
  in
  Ds.Vec.push t.fibers fiber;
  t.live <- t.live + 1;
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> if fiber.state <> Dead then retire t fiber Done);
      exnc =
        (fun e ->
          match e with
          | Killed -> retire t fiber Dead
          | e ->
              retire t fiber Dead;
              raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock.(0) in
                  push ~owner:fiber.ftag t ~delay:d (fun () ->
                      if fiber.state = Dead then discontinue k Killed
                      else begin
                        notify_park t fiber Park_delay parked_at;
                        fiber.state <- Running;
                        continue k ()
                      end))
          | Suspend (t, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock.(0) in
                  let used = ref false in
                  let deliver result =
                    if not !used then begin
                      used := true;
                      push ~owner:fiber.ftag t ~delay:0.0 (fun () ->
                          if fiber.state = Dead then discontinue k Killed
                          else begin
                            notify_park t fiber Park_suspend parked_at;
                            fiber.state <- Running;
                            match result with
                            | Ok v -> continue k v
                            | Error e -> discontinue k e
                          end)
                    end
                  in
                  register { deliver })
          | _ -> None);
    }
  in
  push ~owner:fiber.ftag t ~delay:0.0 (fun () -> match_with f () handler);
  fiber

let delay t dt =
  if dt < 0.0 then invalid_arg "Engine.delay: negative delay";
  perform (Delay (t, dt))

let yield t = perform (Delay (t, 0.0))
let suspend t register = perform (Suspend (t, register))
let resume r v = r.deliver (Ok v)
let fail r e = r.deliver (Error e)

let exec t f =
  t.events <- t.events + 1;
  if t.events > t.max_events then
    raise (Limit_exceeded { what = "event budget"; time = t.clock.(0); events = t.events });
  f ()

(* Chooser mode: gather the full same-time ready set into the scratch
   vectors (candidates in (time, seq) order, exactly the legacy candidate
   order), let the chooser pick, re-push the rest with their original
   seqs so non-picked events keep their relative order. *)
let exec_chosen t =
  let time = t.clock.(0) in
  Ds.Vec.clear t.g_seqs;
  Ds.Vec.clear t.g_owners;
  Ds.Vec.clear t.g_fns;
  Ds.Vec.push t.g_seqs (Pqueue.popped_seq t.queue);
  Ds.Vec.push t.g_owners (Pqueue.popped_owner t.queue);
  Ds.Vec.push t.g_fns (Pqueue.popped_event t.queue);
  let rec gather () =
    match Pqueue.peek_time t.queue with
    | Some pt when pt = time ->
        if Pqueue.pop t.queue then begin
          Ds.Vec.push t.g_seqs (Pqueue.popped_seq t.queue);
          Ds.Vec.push t.g_owners (Pqueue.popped_owner t.queue);
          Ds.Vec.push t.g_fns (Pqueue.popped_event t.queue);
          gather ()
        end
    | _ -> ()
  in
  gather ();
  let n = Ds.Vec.length t.g_fns in
  if n = 1 then exec t (Ds.Vec.get t.g_fns 0)
  else begin
    let ids = Array.init n (Ds.Vec.get t.g_owners) in
    let pick = choose t ~kind:Ready ~ids in
    for i = 0 to n - 1 do
      if i <> pick then
        Pqueue.push t.queue ~time ~seq:(Ds.Vec.get t.g_seqs i)
          ~owner:(Ds.Vec.get t.g_owners i) (Ds.Vec.get t.g_fns i)
    done;
    let g = Ds.Vec.get t.g_fns pick in
    Ds.Vec.clear t.g_fns;
    exec t g
  end

let quiesce t =
  if t.live > 0 then begin
    let parked = ref [] in
    for i = Ds.Vec.length t.fibers - 1 downto 0 do
      let f = Ds.Vec.get t.fibers i in
      if f.state = Parked then parked := f.flabel :: !parked
    done;
    if !parked <> [] then raise (Deadlock !parked)
  end

let run_loop t =
  let rec loop () =
    if Pqueue.pop t.queue then begin
      if Pqueue.popped_time_beyond t.queue t.deadline then
        raise
          (Limit_exceeded
             { what = "simulated-time deadline";
               time = Pqueue.popped_time t.queue;
               events = t.events });
      Pqueue.write_popped_time t.queue t.clock;
      (match t.chooser with
      | None -> exec t (Pqueue.popped_event t.queue)
      | Some _ -> exec_chosen t);
      loop ()
    end
    else quiesce t
  in
  loop ()

let run t =
  if Profile.current () = Profile.Off then run_loop t
  else begin
    let e0 = t.events in
    Fun.protect
      ~finally:(fun () ->
        Profile.add_count "engine.events" (t.events - e0);
        let peak, resizes, searches = Pqueue.stats t.queue in
        Profile.record_max "engine.queue_peak" peak;
        Profile.record_max "engine.queue_resizes" resizes;
        Profile.record_max "engine.queue_searches" searches;
        Profile.record_max "engine.fibers_tracked" (Ds.Vec.length t.fibers);
        Profile.record_max "engine.fibers_live" t.live)
      (fun () -> Profile.span "engine.run" (fun () -> run_loop t))
  end
