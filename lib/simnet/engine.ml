open Effect
open Effect.Deep

exception Killed
exception Deadlock of string list

type fiber_state = Running | Parked | Done | Dead

type fiber = { flabel : string; ftag : int; mutable state : fiber_state }

type park_kind = Park_delay | Park_suspend

type park_observer =
  tag:int -> kind:park_kind -> parked_at:float -> resumed_at:float -> unit

type t = {
  mutable clock : float;
  queue : (unit -> unit) Pqueue.t;
  mutable seq : int;
  mutable events : int;
  mutable next_fid : int;
  mutable fibers : fiber list; (* for deadlock diagnostics *)
  mutable park_observer : park_observer option;
}

type 'a resumer = { deliver : ('a, exn) result -> unit }

(* Effects performed by fiber code.  The engine value travels inside the
   effect payload so that one handler definition serves every engine. *)
type _ Effect.t +=
  | Delay : t * float -> unit Effect.t
  | Suspend : t * ('a resumer -> unit) -> 'a Effect.t

let create () =
  { clock = 0.0; queue = Pqueue.create (); seq = 0; events = 0; next_fid = 0; fibers = [];
    park_observer = None }

let set_park_observer t obs = t.park_observer <- obs

let notify_park t fiber kind parked_at =
  match t.park_observer with
  | None -> ()
  | Some f ->
      f ~tag:fiber.ftag ~kind ~parked_at ~resumed_at:t.clock

let now t = t.clock
let events_processed t = t.events

let push t ~at f =
  t.seq <- t.seq + 1;
  Pqueue.push t.queue ~time:at ~seq:t.seq f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  push t ~at:(t.clock +. delay) f

let alive fiber = fiber.state = Running || fiber.state = Parked
let is_parked fiber = fiber.state = Parked
let label fiber = fiber.flabel

let kill _t fiber = if alive fiber then fiber.state <- Dead

let spawn t ?(label = "fiber") ?(tag = -1) f =
  t.next_fid <- t.next_fid + 1;
  let fiber =
    { flabel = Printf.sprintf "%s#%d" label t.next_fid; ftag = tag; state = Running }
  in
  t.fibers <- fiber :: t.fibers;
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> if fiber.state <> Dead then fiber.state <- Done);
      exnc =
        (fun e ->
          match e with
          | Killed -> fiber.state <- Dead
          | e ->
              fiber.state <- Dead;
              raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay (t, d) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock in
                  push t ~at:(t.clock +. d) (fun () ->
                      if fiber.state = Dead then discontinue k Killed
                      else begin
                        notify_park t fiber Park_delay parked_at;
                        fiber.state <- Running;
                        continue k ()
                      end))
          | Suspend (t, register) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Parked;
                  let parked_at = t.clock in
                  let used = ref false in
                  let deliver result =
                    if not !used then begin
                      used := true;
                      push t ~at:t.clock (fun () ->
                          if fiber.state = Dead then discontinue k Killed
                          else begin
                            notify_park t fiber Park_suspend parked_at;
                            fiber.state <- Running;
                            match result with
                            | Ok v -> continue k v
                            | Error e -> discontinue k e
                          end)
                    end
                  in
                  register { deliver })
          | _ -> None);
    }
  in
  push t ~at:t.clock (fun () -> match_with f () handler);
  fiber

let delay t dt =
  if dt < 0.0 then invalid_arg "Engine.delay: negative delay";
  perform (Delay (t, dt))

let yield t = perform (Delay (t, 0.0))
let suspend t register = perform (Suspend (t, register))
let resume r v = r.deliver (Ok v)
let fail r e = r.deliver (Error e)

let run t =
  let rec loop () =
    match Pqueue.pop_min t.queue with
    | Some (time, _, f) ->
        t.clock <- time;
        t.events <- t.events + 1;
        f ();
        loop ()
    | None ->
        let parked = List.filter (fun f -> f.state = Parked) t.fibers in
        if parked <> [] then raise (Deadlock (List.rev_map label parked))
  in
  loop ()
