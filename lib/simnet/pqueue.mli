(** Calendar event queue keyed by [(time, sequence)] pairs.

    Drop-in successor of the binary-heap queue (frozen as {!Binheap}):
    the dequeue order is the exact total [(time, seq)] order — events at
    the same simulated time fire in insertion order — so every schedule
    the old heap produced replays bit-identically.  Internally it is a
    Brown-style calendar queue tuned for the engine's mostly-monotone
    event stream: O(1) amortized push and pop, structure-of-arrays
    buckets with unboxed float keys, and an allocation-free pop protocol
    (scratch cells instead of result tuples) so the engine's event loop
    runs at a zero-alloc steady state.

    Exactness under floating point is guaranteed by storing each entry's
    integer virtual bucket index at push time and comparing only those
    integers during the dequeue scan — no entry time is ever compared
    against a computed bucket boundary (see the implementation header).

    Invariant: pushed times must be [>= ] the last popped time (the
    simulation clock).  The engine guarantees this by construction;
    violations raise [Invalid_argument]. *)

type t

(** Events are thunks; the [owner] tag rides along for the engine's
    chooser (see {!Engine.set_chooser}). *)
type event = unit -> unit

(** [create ()] is an empty queue. *)
val create : unit -> t

(** [length q] is the number of queued entries. *)
val length : t -> int

(** [is_empty q] is [length q = 0]. *)
val is_empty : t -> bool

(** [push q ~time ~seq ~owner f] inserts [f] with priority [(time, seq)].
    @raise Invalid_argument if [time] precedes the last popped time. *)
val push : t -> time:float -> seq:int -> owner:int -> event -> unit

(** [push_after q ~base ~delay ~seq ~owner f] is
    [push q ~time:(base.(0) +. delay) ...] without materializing a boxed
    float for the sum: [base] is a caller-owned one-element flat array
    (the engine's clock cell).  This keeps the schedule-from-within-an-
    event hot path allocation-free. *)
val push_after :
  t -> base:float array -> delay:float -> seq:int -> owner:int -> event -> unit

(** {1 Allocation-free pop protocol}

    [pop q] dequeues the minimum entry into scratch cells and returns
    [false] when empty.  The [popped_*] accessors read the scratch cells
    and are only meaningful after a [pop] that returned [true]; they stay
    valid until the next [pop]. *)

val pop : t -> bool

val popped_seq : t -> int
val popped_owner : t -> int
val popped_event : t -> event

(** [popped_time q] boxes the popped time — fine off the hot path. *)
val popped_time : t -> float

(** [popped_time_beyond q limit] is [popped_time q > limit] without
    boxing (the engine's deadline check). *)
val popped_time_beyond : t -> float -> bool

(** [write_popped_time q cell] stores the popped time into [cell.(0)]
    without boxing (the engine's clock advance). *)
val write_popped_time : t -> float array -> unit

(** {1 Convenience (allocating) interface} *)

(** [pop_min q] removes and returns the entry with the smallest
    [(time, seq)] key as [(time, seq, owner, event)], or [None]. *)
val pop_min : t -> (float * int * int * event) option

(** [peek_time q] is the key time of the minimum entry, if any. *)
val peek_time : t -> float option

(** [stats q] is [(peak_length, resizes, direct_searches)] — occupancy
    high-water mark and calendar maintenance counters, read by the host
    profiler and the engine bench. *)
val stats : t -> int * int * int
