(** Single-port LogGP-style network cost model.

    A message of [bytes] from [src] to [dst] experiences:
    - sender-side injection: the sender's egress port is occupied for
      [send_overhead + bytes * injection_byte_time]; messages from one rank
      serialize on its port (the effect that makes one-sided fan-out
      expensive and motivates the paper's grid all-to-all);
    - wire time: [latency + bytes * byte_time];
    - receiver-side drain: the receiver's ingress port is occupied for
      [recv_overhead + bytes * injection_byte_time].

    Self-messages only pay a memory-copy cost.  Non-contiguous datatypes pay
    a pack/unpack multiplier supplied by the caller (see
    {!Mpisim.Datatype.pack_factor}). *)

type params = {
  latency : float;  (** wire latency per message, seconds *)
  byte_time : float;  (** wire time per byte, seconds *)
  injection_byte_time : float;  (** port occupancy per byte, seconds *)
  send_overhead : float;  (** fixed CPU cost to post a send *)
  recv_overhead : float;  (** fixed CPU cost to complete a receive *)
  memcpy_byte_time : float;  (** local copy cost per byte (self messages) *)
  setup_overhead : float;
      (** per-operation software initiation cost (argument validation,
          datatype resolution, matching setup) charged to the calling rank
          on every {e ephemeral} user-level p2p call.  Persistent
          operations pay it once at [*_init] and never again on [start] —
          this is the cost matching-once amortizes (MPI-4 persistent
          communication).  Default [0.0]: the incumbent model is
          unchanged. *)
}

(** Parameters loosely modelled after a 100 Gbit/s OmniPath-class fabric:
    2 us latency, 12.5 GB/s wire bandwidth, 0.5 us send/recv overhead. *)
val default : params

(** A sharper network (lower latency) to explore crossovers. *)
val low_latency : params

(** Shared-memory-class parameters for communication within a node. *)
val intra_node : params

(** {1 Tiered fabrics}

    A general three-tier topology description (node / rack / core) with an
    explicit rank→node→rack placement map and optional shared uplink ports
    per node.  [lib/topology] provides builders and presets; this record is
    the simulator-facing core so routing can live next to the port
    schedule. *)

type fabric = {
  f_node_of : int array;  (** world rank → node id *)
  f_rack_of : int array;  (** node id → rack id *)
  f_node : params;  (** pairs on the same node *)
  f_rack : params;  (** pairs on the same rack, different nodes *)
  f_core : params;  (** pairs in different racks *)
  f_uplinks : int;
      (** shared uplink ports per node; inter-node messages from one node
          serialize across them ([0] = uncongested uplinks, the flat
          behavior) *)
}

type t

(** [create params ~ranks] allocates per-rank port state (a flat fabric:
    every pair communicates with the same parameters). *)
val create : params -> ranks:int -> t

(** [create_hierarchical ~inter ~intra ~node_size ~ranks] models a cluster
    of nodes with [node_size] ranks each: pairs within a node (same
    [rank / node_size]) use [intra], all others [inter]. *)
val create_hierarchical : inter:params -> intra:params -> node_size:int -> ranks:int -> t

(** [create_fabric f ~ranks] builds the model for a tiered fabric.  Raises
    [Invalid_argument] if the placement maps are inconsistent with [ranks]. *)
val create_fabric : fabric -> ranks:int -> t

(** [fabric_of_spec ~ranks spec] parses an [MPISIM_TOPOLOGY]-style spec:
    ["two:<node_size>"] (two-tier, shared-memory nodes under the default
    inter-node fabric) or ["fat:<node_size>:<nodes_per_rack>\[:<uplinks>\]"]
    (three-tier fat tree, optionally with [uplinks] shared uplink ports per
    node).  Placement is block (rank [r] on node [r / node_size]).  Raises
    [Invalid_argument] on a malformed spec. *)
val fabric_of_spec : ranks:int -> string -> fabric

(** [params t] returns the inter-node (or flat) model parameters. *)
val params : t -> params

(** [node_of t r] is the shared-memory node hosting world rank [r]: the
    placement map on a tiered fabric, [r / node_size] on the legacy
    two-tier model, and [r] itself (one rank per node) on a flat fabric. *)
val node_of : t -> int -> int

(** [rack_of_rank t r] is the rack of [r]'s node ([0] off tiered fabrics). *)
val rack_of_rank : t -> int -> int

(** [params_between t ~src ~dst] is the parameter set governing one pair. *)
val params_between : t -> src:int -> dst:int -> params

(** [transfer t ~now ~src ~dst ~bytes ~pack_factor] books a message into the
    port schedule and returns [(send_complete, arrival)]: the simulated time
    at which the sender's buffer is free (local send completion), and the
    time at which the message is fully available at the receiver. *)
val transfer :
  t -> now:float -> src:int -> dst:int -> bytes:int -> pack_factor:float -> float * float

(** [local_compute_cost t ~bytes] is the memcpy cost for [bytes]. *)
val local_compute_cost : t -> bytes:int -> float

(** {1 Cost prediction}

    Analytic LogGP terms matching {!transfer}, used by the collective
    algorithm selection layer to predict a candidate algorithm's cost
    without running it. *)

(** [startup_cost p] is the fixed cost of one uncongested message:
    [send_overhead + latency + recv_overhead] (the "alpha" term). *)
val startup_cost : params -> float

(** [per_byte_cost p] is the marginal cost per payload byte:
    [injection_byte_time + byte_time] (the "beta" term). *)
val per_byte_cost : params -> float

(** [msg_cost p ~bytes] is the end-to-end time of one uncongested message. *)
val msg_cost : params -> bytes:int -> float

(** [params_for_group t group] is the parameter set a collective over the
    given world ranks should plan with: the tightest tier containing every
    member (node, then rack, then core on a tiered fabric; intra-node vs
    inter-node on the legacy two-tier model), falling back to the flat
    parameters. *)
val params_for_group : t -> int array -> params

(** A topology-aware planning profile for a group that spans nodes:
    instead of collapsing to the single pessimistic spanning tier (what
    {!params_for_group} returns), hierarchical collective algorithms plan
    intra-node phases with [h_intra] and leader phases with [h_inter]. *)
type hier_profile = {
  h_intra : params;  (** cost of a message between two ranks on one node *)
  h_inter : params;  (** cost of the worst tier the group spans *)
  h_nodes : int;  (** number of distinct nodes occupied by the group *)
  h_max_per_node : int;  (** population of the fullest node *)
}

(** [hier_for_group t group] is the hierarchical profile of the group, or
    [None] when there is no hierarchy to exploit: a flat fabric, a group
    confined to one node (where {!params_for_group} is already exact), or
    the legacy two-tier [?node] model — which deliberately keeps its exact
    pre-topology planning behavior; build a {!fabric} to opt in. *)
val hier_for_group : t -> int array -> hier_profile option
