(** The pre-refactor discrete-event engine, frozen as a baseline.

    Same semantics and API shape as {!Engine} had before the calendar-queue
    refactor: binary-heap event queue ({!Binheap}), per-event tuple and
    entry allocation, an ever-growing fiber list.  The engine bench
    ([dune exec bench/main.exe -- engine]) runs identical synthetic
    workloads on this module and on {!Engine} and gates the measured
    speedup; the differential tests replay schedules on both.  Not used by
    the simulator runtime. *)

type t
type fiber

exception Killed
exception Deadlock of string list
exception Limit_exceeded of { what : string; time : float; events : int }

val create : unit -> t
val now : t -> float
val events_processed : t -> int
val schedule : t -> delay:float -> (unit -> unit) -> unit
val spawn : t -> ?label:string -> ?tag:int -> (unit -> unit) -> fiber
val kill : t -> fiber -> unit
val alive : fiber -> bool
val is_parked : fiber -> bool
val label : fiber -> string
val run : t -> unit

type park_kind = Park_delay | Park_suspend

type park_observer =
  tag:int -> kind:park_kind -> parked_at:float -> resumed_at:float -> unit

val set_park_observer : t -> park_observer option -> unit

type decision_kind = Ready | Match | Completion | Chaos
type chooser = kind:decision_kind -> ids:int array -> int

val set_chooser : t -> chooser option -> unit
val choose : t -> kind:decision_kind -> ids:int array -> int
val set_deadline : t -> float -> unit
val set_max_events : t -> int -> unit
val delay : t -> float -> unit
val yield : t -> unit

type 'a resumer

val suspend : t -> ('a resumer -> unit) -> 'a
val resume : 'a resumer -> 'a -> unit
val fail : 'a resumer -> exn -> unit
