(** Binary min-heap priority queue keyed by [(time, sequence)] pairs.

    This is the engine's pre-refactor event queue, frozen.  It serves two
    purposes: the differential oracle that the calendar queue ({!Pqueue})
    must agree with entry for entry, and the event queue of the
    {!Legacy_engine} baseline that the engine bench measures speedups
    against.  The live engine no longer uses it. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [length q] is the number of queued entries. *)
val length : 'a t -> int

(** [is_empty q] is [length q = 0]. *)
val is_empty : 'a t -> bool

(** [push q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop_min q] removes and returns the entry with the smallest
    [(time, seq)] key, or [None] when empty. *)
val pop_min : 'a t -> (float * int * 'a) option

(** [peek_time q] is the key time of the minimum entry, if any. *)
val peek_time : 'a t -> float option
