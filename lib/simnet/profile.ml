(* Host-side profiler with enum granularity levels (exemplar: OCCAM-Nim's
   profile.nim — SNIPPETS.md Snippet 3): Off must be free, Coarse times
   whole operations, Fine adds event-loop counters and peak-RSS tracking.

   The profiler is a strict observer: it only ever reads the wall clock
   and its own tables, never simulation state, so enabling it cannot
   perturb a schedule (proven over the whole gallery in
   test/test_engine_scale.ml).  When Off, every instrumentation site costs
   exactly one immediate-value comparison. *)

type level = Off | Coarse | Fine

let level_to_string = function Off -> "off" | Coarse -> "coarse" | Fine -> "fine"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" | "" -> Off
  | "coarse" | "1" -> Coarse
  | "fine" | "2" -> Fine
  | other -> invalid_arg (Printf.sprintf "SIMNET_PROFILE: unknown level %S" other)

let env_var = "SIMNET_PROFILE"

type op_stats = {
  mutable calls : int;
  mutable total_ns : int;
  mutable min_ns : int;
  mutable max_ns : int;
}

type state = {
  mutable lvl : level;
  ops : (string, op_stats) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
}

let state =
  {
    lvl = (match Sys.getenv_opt env_var with Some s -> level_of_string s | None -> Off);
    ops = Hashtbl.create 16;
    counters = Hashtbl.create 16;
  }

let current () = state.lvl
let set_level l = state.lvl <- l
let enabled () = state.lvl <> Off
let fine () = state.lvl = Fine

let with_level l f =
  let old = state.lvl in
  state.lvl <- l;
  Fun.protect ~finally:(fun () -> state.lvl <- old) f

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let add_span name ~ns =
  if state.lvl <> Off then begin
    match Hashtbl.find_opt state.ops name with
    | Some s ->
        s.calls <- s.calls + 1;
        s.total_ns <- s.total_ns + ns;
        if ns < s.min_ns then s.min_ns <- ns;
        if ns > s.max_ns then s.max_ns <- ns
    | None ->
        Hashtbl.add state.ops name { calls = 1; total_ns = ns; min_ns = ns; max_ns = ns }
  end

let span name f =
  if state.lvl = Off then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> add_span name ~ns:(now_ns () - t0)) f
  end

let add_count name n =
  if state.lvl = Fine then begin
    match Hashtbl.find_opt state.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add state.counters name (ref n)
  end

let record_max name n =
  if state.lvl = Fine then begin
    match Hashtbl.find_opt state.counters name with
    | Some r -> if n > !r then r := n
    | None -> Hashtbl.add state.counters name (ref n)
  end

(* Linux: VmHWM ("high-water mark" of the resident set) from
   /proc/self/status; 0 where unavailable.  Read lazily at snapshot time —
   never on a hot path. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
              let digits = String.to_seq line |> Seq.filter (fun c -> c >= '0' && c <= '9') in
              let s = String.of_seq digits in
              if s = "" then 0 else int_of_string s
            end
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

type snapshot = {
  slevel : level;
  ops : (string * op_stats) list; (* sorted by name *)
  counters : (string * int) list; (* sorted by name *)
  rss_kb : int;
}

let snapshot () =
  {
    slevel = state.lvl;
    ops =
      Hashtbl.fold
        (fun name s acc ->
          (name, { calls = s.calls; total_ns = s.total_ns; min_ns = s.min_ns; max_ns = s.max_ns })
          :: acc)
        state.ops []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    counters =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) state.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    rss_kb = (if state.lvl = Fine then peak_rss_kb () else 0);
  }

let reset () =
  Hashtbl.reset state.ops;
  Hashtbl.reset state.counters

let pp fmt s =
  Format.fprintf fmt "@[<v>host profile (level %s, peak rss %d kB)" (level_to_string s.slevel)
    s.rss_kb;
  List.iter
    (fun (name, o) ->
      Format.fprintf fmt "@,%s: %d calls, %.3f ms total (%.1f..%.1f us)" name o.calls
        (float_of_int o.total_ns /. 1e6)
        (float_of_int o.min_ns /. 1e3)
        (float_of_int o.max_ns /. 1e3))
    s.ops;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%s: %d" name n) s.counters;
  Format.fprintf fmt "@]"
