(* Calendar event queue (Brown's calendar queue, made exact).

   The engine's event stream is mostly monotone: events are pushed at or
   slightly ahead of the simulation clock and popped in nondecreasing time
   order.  A calendar queue exploits this: events hash into time-width
   buckets, a push appends to its bucket in O(1), and a pop scans forward
   from the clock's bucket, usually finding the minimum within a step or
   two — no O(log n) sift, no per-entry heap record.

   Exactness.  Naive calendar queues compare entry times against
   floating-point bucket boundaries, which can misfile an entry whose
   [time /. width] rounds across a boundary and then dequeue a *larger*
   event first.  We avoid boundary arithmetic entirely: every entry is
   filed under its integer virtual bucket index
   [vi = trunc ((time - origin) / width)], and the dequeue scan compares
   entry [vi] values against the integer scan position.  [vi] is
   recomputed from the stored time wherever it is needed — [origin] and
   [inv_width] only change inside [rebucket], which rehashes every
   entry, so every recomputation evaluates the exact expression the
   entry was filed under and is bit-identical to it.  [vi] is monotone
   in [time] (division by a positive width and truncation both preserve
   order, and every [vi] comes from the same expression), equal times
   yield equal [vi], and equal [vi] means the same bucket.  Buckets are
   unsorted; a pop takes the (time, seq)-argmin of the first bucket
   whose minimum is due.  That entry is the global minimum: all
   remaining entries satisfy [vi >= scan position] (push enforces
   [time >= last popped]), every entry with the scan position's [vi]
   lives in the scanned bucket, and any entry with a larger [vi] has a
   strictly larger time.  So the queue pops in exact [(time, seq)] order
   — bit-identical to the binary heap it replaced (property-tested
   against {!Binheap} in test/test_engine_scale.ml).

   Memory layout.  The calendar is flat: every bucket owns [slot_cap]
   inline slots in three queue-wide arrays — a [float array] of times
   (unboxed storage, unboxed compares), an [int array] of packed
   [seq]/[owner] keys, and a closure array — plus a per-bucket count.
   A probe therefore touches a handful of flat-array cache lines and
   never chases a per-bucket record or per-bucket array headers.  The
   resize policy keeps mean occupancy at or below two entries per
   bucket, so the rare bucket that overflows its inline slots spills
   into a private growable side bag ([spill]); spill entries keep the
   inline slots full, so the common probe path never looks at the spill
   of a bucket holding at most [slot_cap] entries.

   The packed key is [(seq lsl owner_bits) lor (owner + 1)].  Seqs are
   unique (the engine's monotone counter), so comparing keys compares
   seqs; the owner rides in the low bits and is recovered on pop.  Push
   rejects out-of-range values loudly ([seq >= 2^42], [owner] outside
   [-1, 2^21 - 2]).

   Zero-alloc discipline.  Floats never cross a function boundary on the
   hot path (they would be boxed): push times travel through the
   [in_time] scratch cell, popped entries through the [out_*] cells; the
   located minimum travels through the [hit_b]/[hit_i] scratch fields (a
   tuple return would allocate); and helper recursions are top-level
   functions (a local recursive function allocates a closure per call).
   Hot-path array accesses use [Array.unsafe_get]/[Array.unsafe_set]:
   bucket indices come from [land mask], flat indices are
   [b * slot_cap + i] with [i] bounded by [blens.(b) <= slot_cap], spill
   indices are bounded by [s_len] — all in range by construction — and
   the whole protocol is differentially tested against the
   bounds-checked binary heap.  Cold paths (rebucket, growth, spills)
   stay bounds-checked.  A push/pop steady state allocates nothing —
   measured at 0.0 minor-heap words/event by the engine bench.

   Invariant.  Push times must be >= the time of the last popped entry
   (the simulation clock); the engine guarantees this (delays are
   non-negative), and [push] enforces it with [invalid_arg] so misuse is
   loud rather than silently unordered. *)

type event = unit -> unit

let nop () = ()

(* Inline slots per bucket.  Mean occupancy is kept <= 2 by the resize
   policy, so four slots make overflow the exception (~5% of buckets at
   the Poisson tail), not the rule. *)
let slot_cap = 4

(* Packed seq/owner key layout. *)
let owner_bits = 21
let owner_mask = (1 lsl owner_bits) - 1
let max_seq = 1 lsl 42

(* Overflow side bag of a single bucket; unsorted, swap-removed, kept
   only while the bucket holds more than [slot_cap] entries. *)
type spill = {
  mutable s_times : float array;
  mutable s_ints : int array; (* packed seq/owner keys *)
  mutable s_fns : event array;
  mutable s_len : int;
}

type t = {
  (* flat calendar: bucket [b]'s inline entry [i] lives at flat index
     [b * slot_cap + i] in [times]/[ints]/[fns] *)
  mutable times : float array;
  mutable ints : int array; (* packed seq/owner keys *)
  mutable fns : event array;
  mutable blens : Bytes.t;
  (* per bucket: INLINE entry count only (0..slot_cap, fits a byte — the
     whole table is a few KB and stays cache-resident).  Spill entries
     are not counted here: spill nonempty implies the inline slots are
     full, so a count below [slot_cap] also proves the spill is empty,
     and spill adds/removes never touch the byte. *)
  mutable spills : spill array; (* [sentinel] when the bucket never spilled *)
  sentinel : spill;
  mutable mask : int; (* bucket count - 1; count is a power of two *)
  mutable width : float; (* bucket time width *)
  mutable inv_width : float; (* 1.0 /. width, cached for the hot path *)
  origin : float array; (* [0]: anchor subtracted before bucketing *)
  last : float array; (* [0]: last popped time — the queue's clock floor *)
  mutable len : int;
  mutable peak : int;
  mutable resizes : int;
  mutable searches : int; (* direct-search fallbacks (sparse regions) *)
  (* scan-cost maintenance: bucket width is only right for the event
     density it was estimated from, and the density drifts as the
     simulation spreads out; these accumulate dequeue scan steps so pop
     can refresh the width when scans get long *)
  mutable scan_acc : int;
  mutable pop_acc : int;
  (* scratch for the allocation-free pop protocol *)
  mutable hit_b : int; (* bucket where find_min left the minimum *)
  mutable hit_i : int; (* < slot_cap: inline slot; else spill index + slot_cap *)
  out_time : float array;
  mutable out_key : int;
  mutable out_fn : event;
  (* scratch cell for the allocation-free push protocol: the push time
     travels here instead of as a function argument, because a float
     crossing a (non-inlined) call boundary is boxed *)
  in_time : float array;
}

let min_buckets = 16
let max_buckets = 1 lsl 18

let create () =
  let sentinel = { s_times = [||]; s_ints = [||]; s_fns = [||]; s_len = 0 } in
  {
    times = Array.make (min_buckets * slot_cap) 0.0;
    ints = Array.make (min_buckets * slot_cap) 0;
    fns = Array.make (min_buckets * slot_cap) nop;
    blens = Bytes.make min_buckets '\000';
    spills = Array.make min_buckets sentinel;
    sentinel;
    mask = min_buckets - 1;
    width = 1.0e-6 (* network-latency scale: the engine's typical event gap *);
    inv_width = 1.0e6;
    origin = [| 0.0 |];
    last = [| 0.0 |];
    len = 0;
    peak = 0;
    resizes = 0;
    searches = 0;
    scan_acc = 0;
    pop_acc = 0;
    hit_b = 0;
    hit_i = 0;
    out_time = [| 0.0 |];
    out_key = 0;
    out_fn = nop;
    in_time = [| 0.0 |];
  }

let length q = q.len
let is_empty q = q.len = 0
let stats q = (q.peak, q.resizes, q.searches)

(* ------------------------------------------------------------------ *)
(* Bucket primitives                                                   *)

let spill_grow s =
  let cap = Array.length s.s_times in
  let cap' = if cap = 0 then 4 else 2 * cap in
  let times = Array.make cap' 0.0 in
  let ints = Array.make cap' 0 in
  let fns = Array.make cap' nop in
  Array.blit s.s_times 0 times 0 s.s_len;
  Array.blit s.s_ints 0 ints 0 s.s_len;
  Array.blit s.s_fns 0 fns 0 s.s_len;
  s.s_times <- times;
  s.s_ints <- ints;
  s.s_fns <- fns

(* Append to bucket [b]; the entry time is in [q.in_time.(0)] (see the
   zero-alloc note).  Inline slots fill first; only an already-full
   bucket touches its spill. *)
let bucket_add q b ~key fn =
  let inl = Char.code (Bytes.unsafe_get q.blens b) in
  if inl < slot_cap then begin
    let f = (b * slot_cap) + inl in
    Array.unsafe_set q.times f (Array.unsafe_get q.in_time 0);
    Array.unsafe_set q.ints f key;
    Array.unsafe_set q.fns f fn;
    Bytes.unsafe_set q.blens b (Char.unsafe_chr (inl + 1))
  end
  else begin
    let s0 = q.spills.(b) in
    let s =
      if s0 != q.sentinel then s0
      else begin
        let s =
          { s_times = Array.make 4 0.0; s_ints = Array.make 4 0;
            s_fns = Array.make 4 nop; s_len = 0 }
        in
        q.spills.(b) <- s;
        s
      end
    in
    if s.s_len = Array.length s.s_times then spill_grow s;
    let k = s.s_len in
    s.s_times.(k) <- q.in_time.(0);
    s.s_ints.(k) <- key;
    s.s_fns.(k) <- fn;
    s.s_len <- k + 1
  end

(* (time, seq)-minimum of bucket [b], encoded as an inline slot
   (< slot_cap) or a spill index (+ slot_cap); [q.blens.(b) > 0].
   Top-level and loop-based: the pop path must not allocate. *)
let bucket_min q b =
  let inl = Char.code (Bytes.unsafe_get q.blens b) in
  let base = b * slot_cap in
  let bf = ref base in
  for f = base + 1 to base + inl - 1 do
    let j = !bf in
    if
      Array.unsafe_get q.times f < Array.unsafe_get q.times j
      || (Array.unsafe_get q.times f = Array.unsafe_get q.times j
          && Array.unsafe_get q.ints f < Array.unsafe_get q.ints j)
    then bf := f
  done;
  if inl < slot_cap then !bf - base
  else begin
    (* full inline slots: the spill may hold more ([sentinel] has
       [s_len = 0], so it falls through harmlessly) *)
    let s = q.spills.(b) in
    if s.s_len = 0 then !bf - base
    else begin
      let sk = ref 0 in
      for k = 1 to s.s_len - 1 do
        let j = !sk in
        if
          s.s_times.(k) < s.s_times.(j)
          || (s.s_times.(k) = s.s_times.(j) && s.s_ints.(k) < s.s_ints.(j))
        then sk := k
      done;
      let f = !bf and k = !sk in
      if
        s.s_times.(k) < q.times.(f)
        || (s.s_times.(k) = q.times.(f) && s.s_ints.(k) < q.ints.(f))
      then slot_cap + k
      else f - base
    end
  end

(* Accessors over the encoded entry index (rare paths may branch). *)
let entry_key q b e =
  if e < slot_cap then q.ints.((b * slot_cap) + e) else q.spills.(b).s_ints.(e - slot_cap)

(* Is the encoded entry due at scan position [vi]?  The virtual index is
   recomputed from the stored time by the exact expression push filed
   the entry under — [origin] and [inv_width] only change inside
   [rebucket], which rehashes every entry — so the recomputation is
   bit-identical to the filing index.  One comparison per branch so no
   float ever crosses a boundary boxed. *)
let entry_due q b e vi =
  if e < slot_cap then
    int_of_float
      ((Array.unsafe_get q.times ((b * slot_cap) + e) -. Array.unsafe_get q.origin 0)
      *. q.inv_width)
    <= vi
  else
    int_of_float ((q.spills.(b).s_times.(e - slot_cap) -. q.origin.(0)) *. q.inv_width) <= vi

(* Remove the encoded entry, filling the hole from the bucket's last
   entry.  An inline hole refills from the spill first, so spill entries
   exist only while the inline slots are full — the common probe path of
   a <= slot_cap bucket never reads its spill. *)
let bucket_remove q b e =
  let inl = Char.code (Bytes.unsafe_get q.blens b) in
  if e < slot_cap then begin
    let f = (b * slot_cap) + e in
    let s = if inl = slot_cap then q.spills.(b) else q.sentinel in
    if s.s_len > 0 then begin
      (* refill the inline hole from the spill so spill entries only
         exist while the inline slots are full; the byte is unchanged *)
      let k = s.s_len - 1 in
      q.times.(f) <- s.s_times.(k);
      q.ints.(f) <- s.s_ints.(k);
      q.fns.(f) <- s.s_fns.(k);
      s.s_fns.(k) <- nop;
      (* drop the closure reference *)
      s.s_len <- k
    end
    else begin
      let l = (b * slot_cap) + inl - 1 in
      Array.unsafe_set q.times f (Array.unsafe_get q.times l);
      Array.unsafe_set q.ints f (Array.unsafe_get q.ints l);
      Array.unsafe_set q.fns f (Array.unsafe_get q.fns l);
      Array.unsafe_set q.fns l nop;
      Bytes.unsafe_set q.blens b (Char.unsafe_chr (inl - 1))
    end
  end
  else begin
    let s = q.spills.(b) in
    let k = e - slot_cap in
    let l = s.s_len - 1 in
    s.s_times.(k) <- s.s_times.(l);
    s.s_ints.(k) <- s.s_ints.(l);
    s.s_fns.(k) <- s.s_fns.(l);
    s.s_fns.(l) <- nop;
    s.s_len <- l
  end

(* ------------------------------------------------------------------ *)
(* Resizing                                                            *)

(* Rebuild with [n] buckets and a width estimated from the current
   contents: twice the mean gap in the near-future window the dequeue
   scan is about to traverse.  The window is found with two unboxed
   passes (min/max, then a count near the minimum) — no sort, no boxed
   compares, so a rebucket costs O(len) flat.  Degenerate spreads (all
   ties, or a single entry) keep the previous width.  A width estimated
   too small is self-correcting (long dequeue scans trip the maintenance
   rebucket in [pop]); the near-head window guards against the
   non-self-correcting direction, a width too wide for a dense region. *)
let rebucket q n =
  let len = q.len in
  let times = Array.make (max 1 len) 0.0 in
  let keys = Array.make (max 1 len) 0 in
  let fns = Array.make (max 1 len) nop in
  let k = ref 0 in
  let old_n = q.mask + 1 in
  for b = 0 to old_n - 1 do
    let inl = Char.code (Bytes.get q.blens b) in
    if inl > 0 then begin
      let base = b * slot_cap in
      for i = 0 to inl - 1 do
        times.(!k) <- q.times.(base + i);
        keys.(!k) <- q.ints.(base + i);
        fns.(!k) <- q.fns.(base + i);
        incr k
      done;
      if inl = slot_cap then begin
        let s = q.spills.(b) in
        for i = 0 to s.s_len - 1 do
          times.(!k) <- s.s_times.(i);
          keys.(!k) <- s.s_ints.(i);
          fns.(!k) <- s.s_fns.(i);
          incr k
        done;
        if s.s_len > 0 then begin
          Array.fill s.s_fns 0 (Array.length s.s_fns) nop;
          s.s_len <- 0
        end
      end
    end
  done;
  (if len >= 2 then begin
     let tmin = ref times.(0) and tmax = ref times.(0) in
     for i = 1 to len - 1 do
       if times.(i) < !tmin then tmin := times.(i);
       if times.(i) > !tmax then tmax := times.(i)
     done;
     let span = !tmax -. !tmin in
     if span > 0.0 then begin
       (* near-head density: count entries in a window sized to hold ~256
          of them if the spread were uniform, then take the mean gap
          actually observed there *)
       let window = span *. Float.min 1.0 (256.0 /. float_of_int len) in
       let limit = !tmin +. window in
       let c = ref 0 in
       for i = 0 to len - 1 do
         if times.(i) <= limit then incr c
       done;
       let w = 2.0 *. window /. float_of_int (max 2 !c) in
       if w > 0.0 then begin
         q.width <- Float.max 1e-12 (Float.min w 1e9);
         q.inv_width <- 1.0 /. q.width
       end
     end
   end);
  if old_n <> n then begin
    q.times <- Array.make (n * slot_cap) 0.0;
    q.ints <- Array.make (n * slot_cap) 0;
    q.fns <- Array.make (n * slot_cap) nop;
    q.blens <- Bytes.make n '\000';
    q.spills <- Array.make n q.sentinel
  end
  else begin
    Array.fill q.fns 0 (n * slot_cap) nop;
    Bytes.fill q.blens 0 n '\000'
  end;
  q.mask <- n - 1;
  (* re-anchor so virtual indices restart near zero *)
  q.origin.(0) <- q.last.(0);
  q.resizes <- q.resizes + 1;
  q.scan_acc <- 0;
  q.pop_acc <- 0;
  for i = 0 to len - 1 do
    q.in_time.(0) <- times.(i);
    let vi = int_of_float ((q.in_time.(0) -. q.origin.(0)) *. q.inv_width) in
    bucket_add q (vi land q.mask) ~key:keys.(i) fns.(i)
  done

(* ------------------------------------------------------------------ *)
(* Push                                                                *)

(* The push time is in [q.in_time.(0)]. *)
let push_cell q ~seq ~owner fn =
  if not (q.in_time.(0) >= q.last.(0)) then
    invalid_arg "Pqueue.push: time before the last popped entry (or NaN)";
  if seq < 0 || seq >= max_seq then invalid_arg "Pqueue.push: seq out of range";
  if owner < -1 || owner >= owner_mask then invalid_arg "Pqueue.push: owner out of range";
  let key = (seq lsl owner_bits) lor (owner + 1) in
  let vi = int_of_float ((q.in_time.(0) -. q.origin.(0)) *. q.inv_width) in
  bucket_add q (vi land q.mask) ~key fn;
  q.len <- q.len + 1;
  if q.len > q.peak then q.peak <- q.len;
  let n = q.mask + 1 in
  if q.len > 2 * n && n < max_buckets then rebucket q (2 * n)

let push q ~time ~seq ~owner fn =
  q.in_time.(0) <- time;
  push_cell q ~seq ~owner fn

(* Allocation-free relative push: the sum lands in the scratch cell as an
   unboxed float-array store, so no boxed float is ever materialized. *)
let push_after q ~base ~delay ~seq ~owner fn =
  q.in_time.(0) <- base.(0) +. delay;
  push_cell q ~seq ~owner fn

(* ------------------------------------------------------------------ *)
(* Pop                                                                 *)

(* Locate the bucket holding the global (time, seq) minimum and leave it
   in [q.hit_b]/[q.hit_i] (scratch fields — a tuple return would
   allocate).  Scan virtual indices upward from the clock's bucket: every
   remaining entry has [vi >=] the scan start (push enforces time >=
   last, vi is monotone in time), all entries sharing the scan position's
   [vi] live in its bucket, and any entry with a larger [vi] has a
   strictly larger time — so the first scanned bucket whose
   (time, seq)-min is due (entry [vi <=] scan position) holds the global
   minimum.  If a whole lap finds nothing due, the queue is sparse: fall
   back to a direct min scan over every bucket. *)
let direct_search q n =
  q.searches <- q.searches + 1;
  q.scan_acc <- q.scan_acc + n;
  let bb = ref (-1) and be = ref 0 in
  for b = 0 to n - 1 do
    if Char.code (Bytes.get q.blens b) > 0 then begin
      let m = bucket_min q b in
      if !bb < 0 then begin
        bb := b;
        be := m
      end
      else begin
        let tb = if m < slot_cap then q.times.((b * slot_cap) + m)
                 else q.spills.(b).s_times.(m - slot_cap)
        and tc = if !be < slot_cap then q.times.((!bb * slot_cap) + !be)
                 else q.spills.(!bb).s_times.(!be - slot_cap) in
        if tb < tc || (tb = tc && entry_key q b m < entry_key q !bb !be) then begin
          bb := b;
          be := m
        end
      end
    end
  done;
  q.hit_b <- !bb;
  q.hit_i <- !be

(* Top-level (not a local closure — the pop path must not allocate).
   Singleton buckets — the common case at occupancy <= 2 — skip the
   argmin scan entirely. *)
let rec scan_from q n vi steps =
  if steps = n then direct_search q n
  else begin
    let b = vi land q.mask in
    let inl = Char.code (Bytes.unsafe_get q.blens b) in
    if inl = 1 then begin
      if
        int_of_float
          ((Array.unsafe_get q.times (b * slot_cap) -. Array.unsafe_get q.origin 0)
          *. q.inv_width)
        <= vi
      then begin
        q.scan_acc <- q.scan_acc + steps;
        q.hit_b <- b;
        q.hit_i <- 0
      end
      else scan_from q n (vi + 1) (steps + 1)
    end
    else if inl > 1 then begin
      let m = bucket_min q b in
      if entry_due q b m vi then begin
        q.scan_acc <- q.scan_acc + steps;
        q.hit_b <- b;
        q.hit_i <- m
      end
      else scan_from q n (vi + 1) (steps + 1)
    end
    else scan_from q n (vi + 1) (steps + 1)
  end

let find_min q =
  let n = q.mask + 1 in
  scan_from q n (int_of_float ((q.last.(0) -. q.origin.(0)) *. q.inv_width)) 0

let pop q =
  if q.len = 0 then false
  else begin
    find_min q;
    let b = q.hit_b and e = q.hit_i in
    (if e < slot_cap then begin
       let f = (b * slot_cap) + e in
       Array.unsafe_set q.out_time 0 (Array.unsafe_get q.times f);
       q.out_key <- Array.unsafe_get q.ints f;
       q.out_fn <- Array.unsafe_get q.fns f
     end
     else begin
       let s = q.spills.(b) in
       let k = e - slot_cap in
       q.out_time.(0) <- s.s_times.(k);
       q.out_key <- s.s_ints.(k);
       q.out_fn <- s.s_fns.(k)
     end);
    bucket_remove q b e;
    q.last.(0) <- q.out_time.(0);
    q.len <- q.len - 1;
    q.pop_acc <- q.pop_acc + 1;
    let n = q.mask + 1 in
    if q.len * 4 < n && n > min_buckets then rebucket q (n / 2)
    else if
      (* virtual indices grow with simulated time; re-anchor long before
         [int_of_float] could overflow on a long-running simulation *)
      (q.last.(0) -. q.origin.(0)) *. q.inv_width > 1e15
    then rebucket q n
    else if q.pop_acc >= 128 then begin
      (* width maintenance: the estimated width only matches the event
         density it was sampled from, and the density drifts as the
         simulation spreads out.  When scans average over ~2 steps per
         pop, a same-size rebucket (which re-estimates the width and
         re-anchors the origin) is cheaper than keeping on walking
         stale-width buckets. *)
      if q.scan_acc > 2 * q.pop_acc && q.len > 0 then rebucket q n
      else begin
        q.scan_acc <- 0;
        q.pop_acc <- 0
      end
    end;
    true
  end

let popped_seq q = q.out_key lsr owner_bits
let popped_owner q = (q.out_key land owner_mask) - 1
let popped_event q = q.out_fn
let popped_time q = q.out_time.(0)
let popped_time_beyond q limit = q.out_time.(0) > limit
let write_popped_time q cell = cell.(0) <- q.out_time.(0)

let pop_min q =
  if pop q then
    Some (q.out_time.(0), q.out_key lsr owner_bits, (q.out_key land owner_mask) - 1, q.out_fn)
  else None

let peek_time q =
  if q.len = 0 then None
  else begin
    find_min q;
    let b = q.hit_b and e = q.hit_i in
    if e < slot_cap then Some q.times.((b * slot_cap) + e)
    else Some q.spills.(b).s_times.(e - slot_cap)
  end
