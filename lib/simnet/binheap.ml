(* The pre-calendar-queue binary heap, kept verbatim as the differential
   oracle for the calendar queue (test/test_engine_scale.ml) and as the
   event queue of the frozen {!Legacy_engine} perf baseline.  Do not
   "improve" this module: its value is that it is the old code. *)

type 'a entry = { time : float; seq : int; value : 'a }
type 'a t = { mutable heap : 'a entry array; mutable len : int }

let create () = { heap = [||]; len = 0 }
let length q = q.len
let is_empty q = q.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && lt q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && lt q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time ~seq value =
  let e = { time; seq; value } in
  if q.len = Array.length q.heap then begin
    let cap = max 16 (2 * q.len) in
    let heap = Array.make cap e in
    Array.blit q.heap 0 heap 0 q.len;
    q.heap <- heap
  end;
  q.heap.(q.len) <- e;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop_min q =
  if q.len = 0 then None
  else begin
    let min = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    Some (min.time, min.seq, min.value)
  end

let peek_time q = if q.len = 0 then None else Some q.heap.(0).time
