(** Host-side profiler with granularity levels; zero overhead when off.

    Models the OCCAM-Nim profiler the roadmap points at (SNIPPETS.md
    Snippet 3): an enum granularity, per-operation wall-time accumulation
    with min/max, and peak-RSS tracking, all behind a single global level
    so instrumentation sites cost one immediate comparison when disabled.

    The profiler observes the {e host}: wall-clock nanoseconds and
    process RSS.  It never reads or writes simulation state, so any run
    is schedule-identical with profiling off or fine — the simulated
    clock, event counts, digests and {!Mpisim.Profiling} reports do not
    change (asserted over the whole gallery by the engine-scale tests).

    Activation for a whole process: [SIMNET_PROFILE=coarse] (or [fine]);
    scoped activation via {!with_level}. *)

type level =
  | Off  (** disabled — instrumentation sites cost one comparison *)
  | Coarse  (** wall-time per named operation (run loops, experiments) *)
  | Fine  (** plus event-loop counters and peak-RSS tracking *)

val level_to_string : level -> string

(** Parses ["off"]/["0"], ["coarse"]/["1"], ["fine"]/["2"].
    @raise Invalid_argument on anything else. *)
val level_of_string : string -> level

(** The environment variable read at module initialization
    ([SIMNET_PROFILE]). *)
val env_var : string

val current : unit -> level
val set_level : level -> unit

(** [with_level l f] runs [f] with the level set to [l], restoring the
    previous level on exit (exceptional exits included). *)
val with_level : level -> (unit -> 'a) -> 'a

(** [enabled ()] is [current () <> Off]. *)
val enabled : unit -> bool

(** [fine ()] is [current () = Fine]. *)
val fine : unit -> bool

(** Wall-clock nanoseconds (host time, not simulated time). *)
val now_ns : unit -> int

(** [span name f] times [f] and accumulates the span under [name] when
    the level is at least [Coarse]; when [Off] it is exactly [f ()]. *)
val span : string -> (unit -> 'a) -> 'a

(** [add_span name ~ns] accumulates an externally measured span. *)
val add_span : string -> ns:int -> unit

(** [add_count name n] adds [n] to a [Fine]-level counter. *)
val add_count : string -> int -> unit

(** [record_max name n] raises a [Fine]-level high-water-mark counter to
    at least [n]. *)
val record_max : string -> int -> unit

(** Peak resident set size in kB (Linux [VmHWM]; 0 where unavailable). *)
val peak_rss_kb : unit -> int

type op_stats = {
  mutable calls : int;
  mutable total_ns : int;
  mutable min_ns : int;
  mutable max_ns : int;
}

type snapshot = {
  slevel : level;
  ops : (string * op_stats) list;  (** sorted by operation name *)
  counters : (string * int) list;  (** sorted by counter name *)
  rss_kb : int;  (** peak RSS at snapshot time ([Fine] only, else 0) *)
}

val snapshot : unit -> snapshot

(** [reset ()] clears accumulated spans and counters (not the level). *)
val reset : unit -> unit

val pp : Format.formatter -> snapshot -> unit
