type t = {
  slots : int option;
  pending : Mpisim.Request.t Ds.Vec.t;
  persistent : Mpisim.Persist.t Ds.Vec.t;
}

let create () = { slots = None; pending = Ds.Vec.create (); persistent = Ds.Vec.create () }

let create_bounded ~slots () =
  if slots <= 0 then Mpisim.Errors.usage "Request_pool.create_bounded: need at least one slot";
  { slots = Some slots; pending = Ds.Vec.create (); persistent = Ds.Vec.create () }

(* Drop completed requests from the front to make room. *)
let reap pool =
  let keep = Ds.Vec.create () in
  Ds.Vec.iter
    (fun req -> if not (Mpisim.Request.is_complete req) then Ds.Vec.push keep req)
    pool.pending;
  Ds.Vec.clear pool.pending;
  Ds.Vec.append pool.pending keep

let add pool req =
  (match pool.slots with
  | Some slots when Ds.Vec.length pool.pending >= slots ->
      reap pool;
      (* Still full: block on the oldest request to free a slot. *)
      while Ds.Vec.length pool.pending >= slots do
        let oldest = Ds.Vec.get pool.pending 0 in
        ignore (Mpisim.Request.wait oldest);
        reap pool
      done
  | Some _ | None -> ());
  Ds.Vec.push pool.pending req

let in_flight pool = Ds.Vec.length pool.pending

(* ---------------- persistent handles ---------------- *)

let request_init pool h =
  if Mpisim.Persist.is_freed h then
    Mpisim.Errors.usage "Request_pool.request_init: handle is already freed";
  Ds.Vec.push pool.persistent h

let persistent_count pool = Ds.Vec.length pool.persistent

let start_all pool =
  Ds.Vec.iter
    (fun h -> if not (Mpisim.Persist.is_active h) then Mpisim.Persist.start h)
    pool.persistent

let wait_all pool =
  let first_error = ref None in
  let note f =
    match f () with
    | (_ : Mpisim.Request.status) -> ()
    | exception e -> if !first_error = None then first_error := Some e
  in
  Ds.Vec.iter (fun req -> note (fun () -> Mpisim.Request.wait req)) pool.pending;
  Ds.Vec.clear pool.pending;
  (* Persistent handles stay in the pool: only the active round is
     completed; the handle returns to inactive, ready for the next
     start. *)
  Ds.Vec.iter (fun h -> note (fun () -> Mpisim.Persist.wait h)) pool.persistent;
  match !first_error with Some e -> raise e | None -> ()

let free_all pool =
  wait_all pool;
  Ds.Vec.iter Mpisim.Persist.free pool.persistent;
  Ds.Vec.clear pool.persistent

let test_all pool =
  if
    Ds.Vec.for_all Mpisim.Request.is_complete pool.pending
    && Ds.Vec.for_all
         (fun h ->
           (not (Mpisim.Persist.is_active h))
           || Mpisim.Request.is_complete (Mpisim.Persist.request h))
         pool.persistent
  then begin
    wait_all pool;
    true
  end
  else false
