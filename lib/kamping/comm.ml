module C = Mpisim.Collectives
module D = Mpisim.Datatype
module P = Mpisim.P2p
module V = Ds.Vec

type t = { c : Mpisim.Comm.t }

type 'a vresult = {
  recv_buf : 'a V.t;
  recv_counts : int array option;
  recv_displs : int array option;
  send_displs : int array option;
}

let wrap c = { c }
let raw t = t.c
let rank t = Mpisim.Comm.rank t.c
let size t = Mpisim.Comm.size t.c
let is_root ?(root = 0) t = rank t = root
let now t = Mpisim.Comm.now t.c
let compute t s = Mpisim.Comm.compute t.c s
let default_tag = 0

(* ---------------- tracing accessors ---------------- *)

let recorder t = (Mpisim.Comm.world t.c).Mpisim.World.trace
let tracing t = Trace.Recorder.active (recorder t)

let with_region t name f =
  let tr = recorder t in
  if not (Trace.Recorder.active tr) then f ()
  else begin
    let t0 = now t in
    Fun.protect
      ~finally:(fun () ->
        Trace.Recorder.add_span tr
          {
            Trace.Event.sp_rank = Mpisim.Comm.world_rank_of t.c (rank t);
            sp_op = name;
            sp_cat = "user";
            sp_comm = Mpisim.Comm.id t.c;
            sp_seq = -1;
            sp_t0 = t0;
            sp_t1 = now t;
          })
      f
  end

(* ---------------- helpers ---------------- *)

let exclusive_scan counts =
  let n = Array.length counts in
  let d = Array.make n 0 in
  for i = 1 to n - 1 do
    d.(i) <- d.(i - 1) + counts.(i - 1)
  done;
  d

(* Total extent of a (counts, displs) layout; with user displacements the
   blocks may be permuted, so take the max end. *)
let layout_end counts displs =
  let hi = ref 0 in
  Array.iteri (fun i c -> hi := max !hi (displs.(i) + c)) counts;
  !hi

(* A witness element for allocating typed buffers: from the datatype's
   default, else from any non-empty candidate buffer. *)
let filler dt candidates =
  match D.default_elt dt with
  | Some d -> d
  | None -> begin
      match List.find_opt (fun v -> V.length v > 0) candidates with
      | Some v -> V.get v 0
      | None ->
          Mpisim.Errors.usage
            "cannot allocate a receive buffer for datatype %s: create it with ~default"
            (D.name dt)
    end

(* Resolve the receive buffer and policy: a caller-supplied buffer defaults
   to No_resize (the library never reallocates behind the caller's back); a
   fresh buffer is resized to fit. *)
let prepare_recv_full ?recv_buf ?recv_policy dt ~needed ~samples =
  let vec, policy =
    match (recv_buf, recv_policy) with
    | Some v, Some p -> (v, p)
    | Some v, None -> (v, Resize_policy.No_resize)
    | None, p -> (V.create (), Option.value p ~default:Resize_policy.Resize_to_fit)
  in
  let fill = filler dt (samples @ [ vec ]) in
  let arr = Resize_policy.prepare policy vec ~needed ~filler:fill in
  (vec, arr, policy)

let prepare_recv ?recv_buf ?recv_policy dt ~needed ~samples =
  let vec, arr, _ = prepare_recv_full ?recv_buf ?recv_policy dt ~needed ~samples in
  (vec, arr)

(* After a receive completed with [actual] elements, shrink the vector to
   the true size — unless the caller forbade resizing. *)
let fit_to_actual policy dt vec actual =
  if V.length vec <> actual && policy <> Resize_policy.No_resize then
    V.resize vec actual (filler dt [ vec ])

let check_counts_array t what counts =
  Assertions.check Light
    (fun () -> Array.length counts = size t)
    (Printf.sprintf "%s: counts array must have one entry per rank" what)

(* ---------------- collectives ---------------- *)

let pin_algorithm t ~coll ~algo = C.pin_algorithm t.c ~coll ~algo
let unpin_algorithm t ~coll = C.unpin_algorithm t.c ~coll
let pinned_algorithm t ~coll = C.pinned_algorithm t.c ~coll
let pin_table_algorithm t ~coll table = C.pin_table_algorithm t.c ~coll table
let pinned_table_algorithm t ~coll = C.pinned_table_algorithm t.c ~coll
let barrier t = C.barrier t.c

let bcast ?(root = 0) t dt ~send_recv_buf =
  let count = V.length send_recv_buf in
  Assertions.heavy_check_uniform t.c count ~what:"bcast count";
  C.bcast t.c dt (V.unsafe_data send_recv_buf) ~count ~root

let bcast_single ?(root = 0) t dt v =
  let box = [| v |] in
  C.bcast t.c dt box ~count:1 ~root;
  box.(0)

let gather ?(root = 0) ?recv_buf ?recv_policy t dt ~send_buf =
  let count = V.length send_buf in
  Assertions.heavy_check_uniform t.c count ~what:"gather count";
  if rank t = root then begin
    let vec, arr =
      prepare_recv ?recv_buf ?recv_policy dt ~needed:(size t * count) ~samples:[ send_buf ]
    in
    C.gather t.c dt ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:arr ~count ~root;
    vec
  end
  else begin
    C.gather t.c dt ~sendbuf:(V.unsafe_data send_buf) ~count ~root;
    match recv_buf with Some v -> v | None -> V.create ()
  end

let gatherv ?(root = 0) ?recv_counts ?recv_displs ?recv_buf ?recv_policy
    ?(recv_counts_out = false) ?(recv_displs_out = false) t dt ~send_buf =
  let scount = V.length send_buf in
  let i_am_root = rank t = root in
  let counts =
    match recv_counts with
    | Some c ->
        if i_am_root then check_counts_array t "gatherv" c;
        Some c
    | None ->
        (* Default computation: gather the per-rank send counts. *)
        let rc = if i_am_root then Array.make (size t) 0 else [||] in
        if i_am_root then
          C.gather t.c D.int ~sendbuf:[| scount |] ~recvbuf:rc ~count:1 ~root
        else C.gather t.c D.int ~sendbuf:[| scount |] ~count:1 ~root;
        if i_am_root then Some rc else None
  in
  if i_am_root then begin
    let counts = Option.get counts in
    let displs = match recv_displs with Some d -> d | None -> exclusive_scan counts in
    let vec, arr =
      prepare_recv ?recv_buf ?recv_policy dt ~needed:(layout_end counts displs)
        ~samples:[ send_buf ]
    in
    C.gatherv t.c dt ~sendbuf:(V.unsafe_data send_buf) ~scount ~recvbuf:arr ~rcounts:counts
      ~rdispls:displs ~root;
    {
      recv_buf = vec;
      recv_counts = (if recv_counts_out then Some counts else None);
      recv_displs = (if recv_displs_out then Some displs else None);
      send_displs = None;
    }
  end
  else begin
    C.gatherv t.c dt ~sendbuf:(V.unsafe_data send_buf) ~scount ~root;
    {
      recv_buf = (match recv_buf with Some v -> v | None -> V.create ());
      recv_counts = None;
      recv_displs = None;
      send_displs = None;
    }
  end

let allgather ?recv_buf ?recv_policy t dt ~send_buf =
  let count = V.length send_buf in
  Assertions.heavy_check_uniform t.c count ~what:"allgather count";
  let vec, arr =
    prepare_recv ?recv_buf ?recv_policy dt ~needed:(size t * count) ~samples:[ send_buf ]
  in
  C.allgather t.c dt ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:arr ~count;
  vec

let allgather_inplace t dt ~send_recv_buf =
  let p = size t in
  Assertions.check Light
    (fun () -> V.length send_recv_buf mod p = 0)
    "allgather_inplace: buffer length must be a multiple of the communicator size";
  let count = V.length send_recv_buf / p in
  C.allgather ~inplace:true t.c dt ~sendbuf:[||] ~recvbuf:(V.unsafe_data send_recv_buf) ~count

let allgatherv ?recv_counts ?recv_displs ?recv_buf ?recv_policy ?(recv_counts_out = false)
    ?(recv_displs_out = false) t dt ~send_buf =
  let scount = V.length send_buf in
  let counts =
    match recv_counts with
    | Some c ->
        check_counts_array t "allgatherv" c;
        c
    | None ->
        (* Default computation (Fig. 2): allgather of the send counts. *)
        let c = Array.make (size t) 0 in
        C.allgather t.c D.int ~sendbuf:[| scount |] ~recvbuf:c ~count:1;
        c
  in
  let displs = match recv_displs with Some d -> d | None -> exclusive_scan counts in
  let vec, arr =
    prepare_recv ?recv_buf ?recv_policy dt ~needed:(layout_end counts displs) ~samples:[ send_buf ]
  in
  C.allgatherv t.c dt ~sendbuf:(V.unsafe_data send_buf) ~scount ~recvbuf:arr ~rcounts:counts
    ~rdispls:displs;
  {
    recv_buf = vec;
    recv_counts = (if recv_counts_out then Some counts else None);
    recv_displs = (if recv_displs_out then Some displs else None);
    send_displs = None;
  }

let scatter ?(root = 0) ?send_buf ?recv_count ?recv_buf ?recv_policy t dt =
  let i_am_root = rank t = root in
  let sb =
    if i_am_root then
      match send_buf with
      | Some v -> v
      | None -> Mpisim.Errors.usage "scatter: the root rank needs ~send_buf"
    else V.create ()
  in
  let count =
    match recv_count with
    | Some c -> c
    | None ->
        (* The block size is only known at the root: broadcast it. *)
        let c = if i_am_root then V.length sb / size t else 0 in
        bcast_single ~root t D.int c
  in
  let vec, arr = prepare_recv ?recv_buf ?recv_policy dt ~needed:count ~samples:[ sb ] in
  if i_am_root then C.scatter t.c dt ~sendbuf:(V.unsafe_data sb) ~recvbuf:arr ~count ~root
  else C.scatter t.c dt ~recvbuf:arr ~count ~root;
  vec

let scatterv ?(root = 0) ?send_buf ?send_counts ?send_displs ?recv_count ?recv_buf ?recv_policy t
    dt =
  let i_am_root = rank t = root in
  let sb =
    if i_am_root then
      match send_buf with
      | Some v -> v
      | None -> Mpisim.Errors.usage "scatterv: the root rank needs ~send_buf"
    else V.create ()
  in
  let counts =
    if i_am_root then begin
      match send_counts with
      | Some c ->
          check_counts_array t "scatterv" c;
          c
      | None -> Mpisim.Errors.usage "scatterv: the root rank needs ~send_counts"
    end
    else [||]
  in
  let displs = if i_am_root then
      match send_displs with Some d -> d | None -> exclusive_scan counts
    else [||]
  in
  let count =
    match recv_count with
    | Some c -> c
    | None ->
        (* Default computation: scatter the per-rank counts. *)
        let box = Array.make 1 0 in
        if i_am_root then C.scatter t.c D.int ~sendbuf:counts ~recvbuf:box ~count:1 ~root
        else C.scatter t.c D.int ~recvbuf:box ~count:1 ~root;
        box.(0)
  in
  let vec, arr = prepare_recv ?recv_buf ?recv_policy dt ~needed:count ~samples:[ sb ] in
  if i_am_root then
    C.scatterv t.c dt ~sendbuf:(V.unsafe_data sb) ~scounts:counts ~sdispls:displs ~recvbuf:arr
      ~rcount:count ~root
  else C.scatterv t.c dt ~recvbuf:arr ~rcount:count ~root;
  vec

let alltoall ?recv_buf ?recv_policy t dt ~send_buf =
  let p = size t in
  Assertions.check Light
    (fun () -> V.length send_buf mod p = 0)
    "alltoall: send buffer length must be a multiple of the communicator size";
  let count = V.length send_buf / p in
  Assertions.heavy_check_uniform t.c count ~what:"alltoall count";
  let vec, arr = prepare_recv ?recv_buf ?recv_policy dt ~needed:(p * count) ~samples:[ send_buf ] in
  C.alltoall t.c dt ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:arr ~count;
  vec

let alltoallv ?send_displs ?recv_counts ?recv_displs ?recv_buf ?recv_policy
    ?(recv_counts_out = false) ?(recv_displs_out = false) ?(send_displs_out = false) t dt ~send_buf
    ~send_counts =
  check_counts_array t "alltoallv" send_counts;
  let sdispls = match send_displs with Some d -> d | None -> exclusive_scan send_counts in
  let rcounts =
    match recv_counts with
    | Some c ->
        check_counts_array t "alltoallv" c;
        c
    | None ->
        (* Default computation: transpose the counts matrix. *)
        let c = Array.make (size t) 0 in
        C.alltoall t.c D.int ~sendbuf:send_counts ~recvbuf:c ~count:1;
        c
  in
  let rdispls = match recv_displs with Some d -> d | None -> exclusive_scan rcounts in
  let vec, arr =
    prepare_recv ?recv_buf ?recv_policy dt ~needed:(layout_end rcounts rdispls)
      ~samples:[ send_buf ]
  in
  C.alltoallv t.c dt ~sendbuf:(V.unsafe_data send_buf) ~scounts:send_counts ~sdispls ~recvbuf:arr
    ~rcounts ~rdispls;
  {
    recv_buf = vec;
    recv_counts = (if recv_counts_out then Some rcounts else None);
    recv_displs = (if recv_displs_out then Some rdispls else None);
    send_displs = (if send_displs_out then Some sdispls else None);
  }

let alltoallv_flat t dt (flat : 'a Flatten.flat) =
  alltoallv t dt ~send_buf:flat.Flatten.data ~send_counts:flat.Flatten.send_counts

let reduce ?(root = 0) t dt op ~send_buf =
  let count = V.length send_buf in
  Assertions.heavy_check_uniform t.c count ~what:"reduce count";
  if rank t = root then begin
    let out = Array.sub (V.unsafe_data send_buf) 0 count in
    C.reduce t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:out ~count ~root;
    V.unsafe_of_array out count
  end
  else begin
    C.reduce t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~count ~root;
    V.create ()
  end

let allreduce t dt op ~send_buf =
  let count = V.length send_buf in
  Assertions.heavy_check_uniform t.c count ~what:"allreduce count";
  let out = Array.sub (V.unsafe_data send_buf) 0 count in
  C.allreduce t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:out ~count;
  V.unsafe_of_array out count

let allreduce_single t dt op v =
  let out = [| v |] in
  C.allreduce t.c dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

let reduce_single ?(root = 0) t dt op v =
  let out = reduce ~root t dt op ~send_buf:(V.unsafe_of_array [| v |] 1) in
  if rank t = root then Some (V.get out 0) else None

let gather_single ?(root = 0) t dt v =
  gather ~root t dt ~send_buf:(V.unsafe_of_array [| v |] 1)

let scan t dt op ~send_buf =
  let count = V.length send_buf in
  let out = Array.sub (V.unsafe_data send_buf) 0 count in
  C.scan t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:out ~count;
  V.unsafe_of_array out count

let scan_single t dt op v =
  let out = [| v |] in
  C.scan t.c dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

let exscan t dt op ~send_buf =
  let count = V.length send_buf in
  let out = Array.sub (V.unsafe_data send_buf) 0 count in
  C.exscan t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:out ~count;
  V.unsafe_of_array out count

let exscan_single ~init t dt op v =
  let out = [| init |] in
  C.exscan t.c dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

(* ---------------- non-blocking collectives ---------------- *)

let ibcast ?(root = 0) t dt ~send_recv_buf =
  let req = C.ibcast t.c dt (V.unsafe_data send_recv_buf) ~count:(V.length send_recv_buf) ~root in
  Nb_result.make req (fun _ -> send_recv_buf)

let iallreduce t dt op ~send_buf =
  let count = V.length send_buf in
  let out = Array.sub (V.unsafe_data send_buf) 0 count in
  let req = C.iallreduce t.c dt op ~sendbuf:(V.unsafe_data send_buf) ~recvbuf:out ~count in
  Nb_result.make req (fun _ -> V.unsafe_of_array out count)

let ialltoallv ?send_displs ?recv_displs t dt ~send_buf ~send_counts ~recv_counts =
  check_counts_array t "ialltoallv" send_counts;
  check_counts_array t "ialltoallv" recv_counts;
  let sdispls = match send_displs with Some d -> d | None -> exclusive_scan send_counts in
  let rdispls = match recv_displs with Some d -> d | None -> exclusive_scan recv_counts in
  let needed = layout_end recv_counts rdispls in
  let fill = filler dt [ send_buf ] in
  let out = Array.make (max needed 1) fill in
  let req =
    C.ialltoallv t.c dt ~sendbuf:(V.unsafe_data send_buf) ~scounts:send_counts ~sdispls
      ~recvbuf:out ~rcounts:recv_counts ~rdispls
  in
  Nb_result.make req (fun _ -> V.unsafe_of_array out needed)

(* ---------------- point-to-point ---------------- *)

let send ?(tag = default_tag) t dt ~send_buf ~dst =
  P.send t.c dt (V.unsafe_data send_buf) ~count:(V.length send_buf) ~dst ~tag

let recv ?(tag = default_tag) ?count ?recv_buf ?recv_policy t dt ~src =
  let src, tag, count =
    match count with
    | Some c -> (src, tag, c)
    | None ->
        (* Probe first so the buffer is sized exactly. *)
        let st = P.probe t.c ~src ~tag in
        (st.Mpisim.Request.source, st.Mpisim.Request.tag, st.Mpisim.Request.count)
  in
  let vec, arr, policy = prepare_recv_full ?recv_buf ?recv_policy dt ~needed:count ~samples:[] in
  let st = P.recv t.c dt arr ~count ~src ~tag in
  (* The status carries the true element count (it may be below capacity
     when ?count was an upper bound). *)
  fit_to_actual policy dt vec st.Mpisim.Request.count;
  vec

let isend ?(tag = default_tag) t dt ~send_buf ~dst =
  let req = P.isend t.c dt (V.unsafe_data send_buf) ~count:(V.length send_buf) ~dst ~tag in
  Nb_result.make req (fun _ -> send_buf)

let issend ?(tag = default_tag) t dt ~send_buf ~dst =
  let req = P.issend t.c dt (V.unsafe_data send_buf) ~count:(V.length send_buf) ~dst ~tag in
  Nb_result.make req (fun _ -> send_buf)

let irecv ?(tag = default_tag) ~count t dt ~src =
  let vec, arr, policy = prepare_recv_full dt ~needed:count ~samples:[] in
  let req = P.irecv t.c dt arr ~count ~src ~tag in
  Nb_result.make req (fun st ->
      fit_to_actual policy dt vec st.Mpisim.Request.count;
      vec)

let iprobe ?(tag = default_tag) t ~src = P.iprobe t.c ~src ~tag

(* ---------------- persistent & partitioned (MPI-4) ---------------- *)

module Persist = Mpisim.Persist

let send_init ?(tag = default_tag) t dt ~send_buf ~dst =
  P.send_init t.c dt (V.unsafe_data send_buf) ~count:(V.length send_buf) ~dst ~tag

let ssend_init ?(tag = default_tag) t dt ~send_buf ~dst =
  P.ssend_init t.c dt (V.unsafe_data send_buf) ~count:(V.length send_buf) ~dst ~tag

let recv_init ?(tag = default_tag) ~count t dt ~src =
  let fill = filler dt [] in
  let arr = Array.make (max 1 count) fill in
  let h = P.recv_init t.c dt arr ~count ~src ~tag in
  (h, V.unsafe_of_array arr count)

let psend_init ?(tag = default_tag) t dt ~send_buf ~partitions ~count ~dst =
  P.psend_init t.c dt (V.unsafe_data send_buf) ~partitions ~count ~dst ~tag

let precv_init ?(tag = default_tag) ~partitions ~count t dt ~src =
  let fill = filler dt [] in
  let arr = Array.make (max 1 (partitions * count)) fill in
  let h = P.precv_init t.c dt arr ~partitions ~count ~src ~tag in
  (h, V.unsafe_of_array arr (partitions * count))

let bcast_init ?(root = 0) t dt ~send_recv_buf =
  C.bcast_init t.c dt (V.unsafe_data send_recv_buf) ~count:(V.length send_recv_buf) ~root

let start = Persist.start
let startall = Persist.startall
let free_request = Persist.free

(* ---------------- large counts (MPI-4 MPI_Count) ---------------- *)

let send_sparse ?(tag = default_tag) t dt ~count ~dst = P.send_sparse t.c dt ~count ~dst ~tag

let recv_sparse ?(tag = default_tag) t dt ~capacity ~src =
  P.recv_sparse t.c dt ~capacity ~src ~tag

(* ---------------- sessions (MPI-4 §11) ---------------- *)

let session ?name t = Mpisim.Session.init ?name t.c
let comm_of_pset s pname = wrap (Mpisim.Session.comm_of_pset s pname)

(* ---------------- serialization ---------------- *)

let send_serialized ?(tag = default_tag) t codec v ~dst =
  let wire = Serialization.to_wire codec v in
  compute t (Serialization.cost ~bytes:(Array.length wire));
  P.send t.c Serialization.wire_datatype wire ~dst ~tag

let recv_serialized ?(tag = default_tag) t codec ~src =
  let st = P.probe t.c ~src ~tag in
  let buf = Array.make (max 1 st.Mpisim.Request.count) '\000' in
  let st = P.recv t.c Serialization.wire_datatype buf ~src:st.source ~tag:st.tag in
  compute t (Serialization.cost ~bytes:st.Mpisim.Request.count);
  Serialization.of_wire codec buf st.Mpisim.Request.count

let bcast_serialized ?(root = 0) t codec v =
  let i_am_root = rank t = root in
  let wire = if i_am_root then Serialization.to_wire codec v else [||] in
  if i_am_root then compute t (Serialization.cost ~bytes:(Array.length wire));
  let len = bcast_single ~root t D.int (Array.length wire) in
  let buf = if i_am_root then wire else Array.make (max 1 len) '\000' in
  C.bcast t.c Serialization.wire_datatype buf ~count:len ~root;
  if i_am_root then v
  else begin
    compute t (Serialization.cost ~bytes:len);
    Serialization.of_wire codec buf len
  end

let allgather_serialized t codec v =
  let wire = Serialization.to_wire codec v in
  compute t (Serialization.cost ~bytes:(Array.length wire));
  let result =
    allgatherv ~recv_counts_out:true ~recv_displs_out:true t Serialization.wire_datatype
      ~send_buf:(V.unsafe_of_array wire (Array.length wire))
  in
  let counts = Option.get result.recv_counts in
  let displs = Option.get result.recv_displs in
  let data = V.unsafe_data result.recv_buf in
  Array.init (size t) (fun r ->
      let piece = Array.sub data displs.(r) counts.(r) in
      compute t (Serialization.cost ~bytes:counts.(r));
      Serialization.of_wire codec piece counts.(r))

let alltoallv_serialized t codec messages =
  let p = size t in
  Assertions.check Light
    (fun () -> Array.length messages = p)
    "alltoallv_serialized: one message per rank required";
  let parts = Array.map (Serialization.to_wire codec) messages in
  let send_counts = Array.map Array.length parts in
  compute t (Serialization.cost ~bytes:(Array.fold_left ( + ) 0 send_counts));
  let send_buf = V.create () in
  Array.iter (fun part -> V.append_array send_buf part) parts;
  let res =
    alltoallv ~recv_counts_out:true ~recv_displs_out:true t Serialization.wire_datatype ~send_buf
      ~send_counts
  in
  let counts = Option.get res.recv_counts in
  let displs = Option.get res.recv_displs in
  let data = V.unsafe_data res.recv_buf in
  Array.init p (fun s ->
      compute t (Serialization.cost ~bytes:counts.(s));
      Serialization.of_wire codec (Array.sub data displs.(s) counts.(s)) counts.(s))

(* ---------------- communicator management ---------------- *)

let dup t = wrap (C.dup t.c)
let split t ~color ~key = Option.map wrap (C.split t.c ~color ~key)
let split_by_node ?key t = wrap (C.split_by_node ?key t.c)
let node_of_rank t r = Mpisim.Comm.node_of_rank t.c r
