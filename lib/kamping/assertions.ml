type level = Off | Light | Normal | Heavy | Communication

let rank_of = function Off -> 0 | Light -> 1 | Normal -> 2 | Heavy -> 3 | Communication -> 4
let current = ref Light

(* The simulator-side checker mirrors the KaMPIng level: [Normal] adds no
   simulator checks beyond [Light], and [Heavy]'s communicating assertions
   correspond to the checker's deadlock/leak analyses. *)
let checker_level_of = function
  | Off -> Mpisim.Checker.Off
  | Light | Normal -> Mpisim.Checker.Light
  | Heavy -> Mpisim.Checker.Heavy
  | Communication -> Mpisim.Checker.Communication

let set_level l =
  current := l;
  Mpisim.Checker.set_level (checker_level_of l)

let level () = !current
let enabled l = rank_of l <= rank_of !current

let check l cond msg = if enabled l && not (cond ()) then raise (Mpisim.Errors.Usage_error msg)

let heavy_check_uniform comm value ~what =
  if enabled Heavy then begin
    let lo = Array.make 1 0 and hi = Array.make 1 0 in
    Mpisim.Collectives.allreduce comm Mpisim.Datatype.int Mpisim.Op.int_min ~sendbuf:[| value |]
      ~recvbuf:lo ~count:1;
    Mpisim.Collectives.allreduce comm Mpisim.Datatype.int Mpisim.Op.int_max ~sendbuf:[| value |]
      ~recvbuf:hi ~count:1;
    if lo.(0) <> hi.(0) then
      Mpisim.Errors.usage "heavy assertion failed: ranks disagree on %s (min %d, max %d)" what
        lo.(0) hi.(0)
  end

let with_level l f =
  let saved = !current and saved_check = Mpisim.Checker.level () in
  set_level l;
  Fun.protect
    ~finally:(fun () ->
      current := saved;
      Mpisim.Checker.set_level saved_check)
    f
