(** Request pools: bulk completion of non-blocking operations
    (paper Sec. III-E).

    The unbounded pool simply collects requests and completes them together.
    The {e bounded} pool — mentioned in the paper as work in progress — has
    a fixed number of slots and blocks the submitter until a slot frees up,
    which caps the number of concurrent non-blocking requests (useful to
    bound unexpected-message memory). *)

type t

(** [create ()] is an empty, unbounded pool. *)
val create : unit -> t

(** [create_bounded ~slots ()] is a pool with at most [slots] in-flight
    requests; {!add} blocks (completing the oldest requests) when full. *)
val create_bounded : slots:int -> unit -> t

(** [add pool req] submits a request. *)
val add : t -> Mpisim.Request.t -> unit

(** [in_flight pool] counts submitted requests that have not been reaped by
    {!wait_all}. *)
val in_flight : t -> int

(** [wait_all pool] completes every submitted request and empties the
    pending set; persistent handles only have their active round waited
    (inactive rounds are a no-op) and stay in the pool for the next
    {!start_all}.
    @raise the first failure exception encountered, after draining. *)
val wait_all : t -> unit

(** [test_all pool] is true (and behaves like {!wait_all}) iff every
    pending request and every active persistent round has completed. *)
val test_all : t -> bool

(** {1 Persistent handles (MPI-4 §3.9)}

    A pool doubles as the owner of persistent handles: register each
    [*_init] result once with {!request_init}, then drive rounds with
    {!start_all} / {!wait_all} and release everything with {!free_all}
    (which also satisfies the checker's leak scan). *)

(** [request_init pool h] registers a persistent handle; a usage error if
    [h] is already freed. *)
val request_init : t -> Mpisim.Persist.t -> unit

(** [persistent_count pool] counts registered persistent handles. *)
val persistent_count : t -> int

(** [start_all pool] arms every registered inactive handle (active ones
    are left to finish their round). *)
val start_all : t -> unit

(** [free_all pool] completes outstanding rounds ({!wait_all}), frees
    every persistent handle, and forgets them. *)
val free_all : t -> unit
