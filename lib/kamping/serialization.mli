(** Explicit serialization adapters (paper Sec. III-D3, Fig. 5).

    Heap-structured data (strings, maps, trees) cannot be described by a
    fixed-extent datatype; it must be packed into a contiguous buffer.
    Unlike Boost.MPI, serialization is never implicit: the caller opts in by
    wrapping values with {!to_wire} / unwrapping with {!of_wire} (or by
    using the [_serialized] convenience calls on [Comm]).  The pack/unpack
    CPU time is charged to the simulated clock, making the hidden cost of
    serialization visible in every benchmark. *)

(** [cost ~bytes] is the simulated CPU seconds to (de)serialize a payload
    of [bytes] (used by the communication wrappers). *)
val cost : bytes:int -> float

(** [to_wire codec v] serializes [v] into a wire buffer ([char array]
    tagged with the [serialized] datatype). *)
val to_wire : 'a Serde.Codec.t -> 'a -> char array

(** [of_wire codec buf len] deserializes the first [len] bytes. *)
val of_wire : 'a Serde.Codec.t -> char array -> int -> 'a

(** [wire_datatype] is the datatype of serialized payloads. *)
val wire_datatype : char Mpisim.Datatype.t

(** {1 Large counts (MPI-4 [MPI_Count])}

    Element counts beyond {!Mpisim.Datatype.max_small_count} cannot ride
    in a single [int] header field of a fixed-width wire format; these
    helpers split them into two 31-bit halves for transmission
    (the OCaml analogue of MPI-4's [MPI_Count] / big-count headers). *)

(** [encode_count c] is [[| hi; lo |]], both halves in [0, 2^31).
    @raise Mpisim.Errors.Count_overflow on a negative count. *)
val encode_count : int -> int array

(** [decode_count arr] reassembles {!encode_count}'s output.
    @raise Mpisim.Errors.Usage_error on malformed input. *)
val decode_count : int array -> int
