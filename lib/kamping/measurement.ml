type entry = { mutable accumulated : float; mutable started_at : float option }
type t = { comm : Comm.t; entries : (string, entry) Hashtbl.t }

let create comm = { comm; entries = Hashtbl.create 8 }

let entry t phase =
  match Hashtbl.find_opt t.entries phase with
  | Some e -> e
  | None ->
      let e = { accumulated = 0.0; started_at = None } in
      Hashtbl.add t.entries phase e;
      e

let start t phase =
  let e = entry t phase in
  match e.started_at with
  | Some _ -> Mpisim.Errors.usage "Measurement.start: phase %s is already running" phase
  | None -> e.started_at <- Some (Comm.now t.comm)

let stop t phase =
  let e = entry t phase in
  match e.started_at with
  | None -> Mpisim.Errors.usage "Measurement.stop: phase %s is not running" phase
  | Some t0 ->
      e.accumulated <- e.accumulated +. (Comm.now t.comm -. t0);
      e.started_at <- None

let time t phase f =
  start t phase;
  Fun.protect ~finally:(fun () -> stop t phase) f

let local t phase = (entry t phase).accumulated

let phases t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [] |> List.sort String.compare

type stats = { phase : string; min : float; mean : float; max : float }

(* Every rank must fold the same phases in the same order, or the
   per-phase allreduces below would mismatch (and with unlucky phase
   names, deadlock).  Agree on the phase sets first — the exchange costs
   one allgather and keeps the collective pattern identical on all ranks,
   so when sets differ every rank raises the same diagnostic instead of
   hanging. *)
let check_phase_agreement t names =
  let all =
    Comm.allgather_serialized t.comm Serde.Codec.(list string) names
  in
  let agree = Array.for_all (fun l -> l = names) all in
  if not agree then begin
    let union =
      Array.fold_left
        (fun acc l -> List.filter (fun p -> not (List.mem p acc)) l @ acc)
        [] all
      |> List.sort String.compare
    in
    let inter =
      List.filter (fun p -> Array.for_all (List.mem p) all) union
    in
    let b = Buffer.create 256 in
    Buffer.add_string b "Measurement.aggregate: ranks recorded different phase sets;";
    Array.iteri
      (fun r l ->
        let missing = List.filter (fun p -> not (List.mem p l)) union in
        let extra = List.filter (fun p -> not (List.mem p inter)) l in
        if missing <> [] || extra <> [] then begin
          Buffer.add_string b (Printf.sprintf " rank %d" r);
          if missing <> [] then
            Buffer.add_string b
              (Printf.sprintf " missing [%s]" (String.concat ", " missing));
          if extra <> [] then
            Buffer.add_string b
              (Printf.sprintf " extra [%s]" (String.concat ", " extra));
          Buffer.add_char b ';'
        end)
      all;
    Mpisim.Errors.usage "%s" (Buffer.contents b)
  end

let aggregate t =
  let names = phases t in
  check_phase_agreement t names;
  List.map
    (fun phase ->
      let v = local t phase in
      let min = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_min v in
      let max = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_max v in
      let sum = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_sum v in
      { phase; min; mean = sum /. float_of_int (Comm.size t.comm); max })
    names

let pp_stats fmt s =
  Format.fprintf fmt "%-20s min %.1fus mean %.1fus max %.1fus" s.phase (1e6 *. s.min)
    (1e6 *. s.mean) (1e6 *. s.max)
