(* 2 ns/byte models a fast binary archive plus the intermediate
   allocation; measured against raw memcpy (0.1 ns/byte) this is the
   "non-negligible overhead" of Sec. III-D4. *)
let cost ~bytes = 50.0e-9 +. (2.0e-9 *. float_of_int bytes)

let to_wire codec v =
  let b = Serde.Codec.encode codec v in
  Array.init (Bytes.length b) (Bytes.get b)

let of_wire codec buf len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i buf.(i)
  done;
  Serde.Codec.decode codec b

let wire_datatype = Mpisim.Datatype.serialized

(* Large counts (MPI-4 MPI_Count) cross the wire as two 31-bit halves so
   that a count header never overflows the int datatype on any side. *)
let encode_count count =
  let hi, lo = Mpisim.Datatype.split_count count in
  [| hi; lo |]

let decode_count arr =
  if Array.length arr <> 2 then
    Mpisim.Errors.usage "Serialization.decode_count: expected 2 halves, got %d" (Array.length arr);
  Mpisim.Datatype.join_count ~hi:arr.(0) ~lo:arr.(1)
