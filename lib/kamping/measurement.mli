(** Timing instrumentation for distributed phases (the analogue of
    KaMPIng's measurement utilities, supporting the algorithm-engineering
    workflow of Sec. III-C).

    A timer accumulates named phases on each rank (in simulated time);
    {!aggregate} then combines them across the communicator into min, mean
    and max — the numbers a scaling plot needs.  [start]/[stop] pairs may
    nest and repeat; repeated phases accumulate. *)

type t

(** [create comm] makes a per-rank timer. *)
val create : Comm.t -> t

(** [start t phase] begins (or resumes) a named phase.
    @raise Mpisim.Errors.Usage_error if the phase is already running. *)
val start : t -> string -> unit

(** [stop t phase] ends the phase, adding to its accumulated time.
    @raise Mpisim.Errors.Usage_error if the phase is not running. *)
val stop : t -> string -> unit

(** [time t phase f] runs [f ()] inside a [start]/[stop] pair. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** [local t phase] is the accumulated simulated seconds on this rank. *)
val local : t -> string -> float

(** [phases t] lists the phases recorded so far (sorted). *)
val phases : t -> string list

(** Aggregated statistics of one phase across the communicator. *)
type stats = { phase : string; min : float; mean : float; max : float }

(** [aggregate t] combines all phases across ranks (collective).  Every
    rank must have recorded the same phase set; the sets are verified with
    an internal allgather first, and on disagreement {e every} rank raises
    an [Mpisim.Errors.Usage_error] naming the missing/extra phases per rank
    (rather than mismatching collectives or hanging). *)
val aggregate : t -> stats list

(** [pp_stats fmt stats] prints an aggregate table row. *)
val pp_stats : Format.formatter -> stats -> unit
