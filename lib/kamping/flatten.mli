(** [with_flattened]-style utilities (paper Sec. IV-B).

    Irregular algorithms naturally build a {e mapping from destination rank
    to a message buffer} (e.g. the next BFS frontier per target rank).
    MPI's [Alltoallv] instead wants one contiguous buffer plus a counts
    array.  [flatten] performs the conversion and hands both to the caller,
    removing a recurring chunk of boilerplate. *)

type 'a flat = {
  data : 'a Ds.Vec.t;  (** all messages concatenated by ascending rank *)
  send_counts : int array;  (** elements destined for each rank *)
}

(** [flatten ~comm_size tbl] lays the per-destination buffers out
    contiguously in rank order.  Missing destinations contribute zero
    elements; destinations outside [0, comm_size) are a usage error. *)
val flatten : comm_size:int -> (int, 'a Ds.Vec.t) Hashtbl.t -> 'a flat

(** [total_count flat] sums the send counts with an explicit overflow
    check (MPI-4 large-count discipline: the total of many per-rank
    counts is the first place 32-bit counts overflow).
    @raise Mpisim.Errors.Count_overflow instead of wrapping around. *)
val total_count : 'a flat -> int

(** [flatten_fn ~comm_size f] is {!flatten} for a functional description:
    [f dest] lists the elements for [dest]. *)
val flatten_fn : comm_size:int -> (int -> 'a list) -> 'a flat
