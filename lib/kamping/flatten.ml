type 'a flat = { data : 'a Ds.Vec.t; send_counts : int array }

let flatten ~comm_size tbl =
  Hashtbl.iter
    (fun dest _ ->
      if dest < 0 || dest >= comm_size then
        Mpisim.Errors.usage "flatten: destination %d outside communicator of size %d" dest comm_size)
    tbl;
  let send_counts = Array.make comm_size 0 in
  let data = Ds.Vec.create () in
  for dest = 0 to comm_size - 1 do
    match Hashtbl.find_opt tbl dest with
    | Some msgs ->
        send_counts.(dest) <- Ds.Vec.length msgs;
        Ds.Vec.append data msgs
    | None -> ()
  done;
  { data; send_counts }

(* Summing per-destination counts is where a 32-bit-count MPI first
   overflows in practice (the "int is not enough" motivation of MPI-4):
   check explicitly so huge layouts fail loudly, not by wraparound. *)
let total_count flat =
  Array.fold_left
    (fun acc c ->
      let t = acc + c in
      if c < 0 || t < 0 then raise (Mpisim.Errors.Count_overflow { count = acc; extent = 1 });
      t)
    0 flat.send_counts

let flatten_fn ~comm_size f =
  let send_counts = Array.make comm_size 0 in
  let data = Ds.Vec.create () in
  for dest = 0 to comm_size - 1 do
    let msgs = f dest in
    send_counts.(dest) <- List.length msgs;
    List.iter (Ds.Vec.push data) msgs
  done;
  { data; send_counts }
