(** Leveled runtime assertions (paper Sec. III-G).

    KaMPIng groups its runtime checks in levels that can be disabled
    one by one, from lightweight local checks up to assertions that issue
    {e additional communication} to verify cross-rank invariants (e.g. that
    all ranks agree on a count).  The level is a global runtime switch;
    with [Off], every check compiles down to nothing on the hot path. *)

type level =
  | Off  (** no checking at all — the zero-overhead production mode *)
  | Light  (** cheap local parameter validation *)
  | Normal  (** local validation plus invariant checks *)
  | Heavy  (** additionally run checks that require communication *)
  | Communication
      (** additionally verify cross-rank collective ordering through the
          simulator's {!Mpisim.Checker} (the full MUST-style mode) *)

(** [set_level l] / [level ()] configure the global assertion level
    (default [Light]).  The level also drives the simulator-side
    {!Mpisim.Checker}: [Off] disables it entirely, [Light]/[Normal] keep
    its match-time error recording, [Heavy] adds deadlock diagnosis and
    leak detection, and [Communication] adds collective-ordering
    verification. *)
val set_level : level -> unit

val level : unit -> level

(** [enabled l] is true when the current level includes [l]. *)
val enabled : level -> bool

(** [check l cond msg] raises [Errors.Usage_error msg] when level [l] is
    enabled and [cond ()] is false.  [cond] is not evaluated otherwise. *)
val check : level -> (unit -> bool) -> string -> unit

(** [heavy_check_uniform comm value ~what] verifies (with an allreduce —
    communication!) that every rank passed the same [value]; only runs at
    level [Heavy]. *)
val heavy_check_uniform : Mpisim.Comm.t -> int -> what:string -> unit

(** [with_level l f] runs [f] with the level temporarily set to [l]. *)
val with_level : level -> (unit -> 'a) -> 'a
