(** The KaMPIng communicator: named-parameter MPI with computed defaults
    (paper Sec. III).

    Every wrapper follows the same conventions:

    - {b Named parameters.}  OCaml's labelled and optional arguments play
      the role of KaMPIng's named-parameter factories: any subset of
      [?recv_counts], [?recv_displs], [?send_displs], [?recv_buf] may be
      given, in any order; whatever is omitted is {e computed by the
      library}, using extra communication where necessary (e.g. an
      allgather of send counts for {!allgatherv}, Fig. 2/3 of the paper).
      When the caller supplies everything, the wrapper issues {e exactly}
      the single underlying MPI call — the (near) zero-overhead property,
      which the test suite verifies through the profiling interface.
    - {b Results by value.}  The receive buffer is always returned; other
      computed parameters are returned in the {!vresult} record only when
      requested with the corresponding [*_out] flag (out-parameters,
      Sec. III-B).
    - {b Memory control.}  [?recv_buf] recycles a caller-owned
      {!Ds.Vec.t}; [?recv_policy] picks the {!Resize_policy.t}.  Without
      [?recv_buf] a fresh vector is allocated and resized to fit; with it,
      the default policy is [No_resize] (never allocate behind the
      caller's back, Sec. III-C).
    - {b Datatypes.}  OCaml cannot infer a wire datatype from a type
      variable, so each call takes the datatype as its second positional
      argument (built once via {!Type_traits}); counts are still inferred
      from vector lengths, as in the paper. *)

type t

(** [wrap raw] lifts a plain communicator; [raw t] unwraps it (both ways of
    the gradual-migration story, Sec. III-F). *)
val wrap : Mpisim.Comm.t -> t

val raw : t -> Mpisim.Comm.t

(** [rank t] and [size t] mirror [Comm_rank]/[Comm_size]. *)
val rank : t -> int

val size : t -> int

(** [is_root ?root t] is [rank t = root] (default root 0). *)
val is_root : ?root:int -> t -> bool

(** [now t] is the simulated time; [compute t s] charges local work. *)
val now : t -> float

val compute : t -> float -> unit

(** {1 Tracing}

    See {!Trace} and [Mpisim.Mpi.run ?trace]: when the surrounding run is
    traced, every MPI call this communicator issues is recorded as a
    timeline span. *)

(** [tracing t] is true when the surrounding run records an event trace. *)
val tracing : t -> bool

(** [with_region t name f] wraps [f ()] in a user-labelled timeline region
    (category ["user"]) on traced runs; on untraced runs it just calls
    [f ()].  Regions nest and show up in the Chrome-trace export and the
    per-call-site wait attribution. *)
val with_region : t -> string -> (unit -> 'a) -> 'a

(** Result record of the variable collectives.  Fields other than
    [recv_buf] are [Some] only when requested via the [*_out] flags. *)
type 'a vresult = {
  recv_buf : 'a Ds.Vec.t;
  recv_counts : int array option;
  recv_displs : int array option;
  send_displs : int array option;
}

(** {1 Collectives}

    [bcast], [allreduce], [allgather] and [alltoall] are tuned: the
    cheapest algorithm under the communicator's network parameters is
    selected per call (see {!Mpisim.Collectives} and [Coll_algos]).
    [pin_algorithm t ~coll ~algo] overrides the choice for this
    communicator — set it identically on every rank; [unpin_algorithm]
    restores cost-based selection and [pinned_algorithm] reads the
    override in force. *)

val pin_algorithm : t -> coll:string -> algo:string -> unit
val unpin_algorithm : t -> coll:string -> unit
val pinned_algorithm : t -> coll:string -> string option

(** [pin_table_algorithm t ~coll table] installs a message-size-keyed pin:
    each [(min_bytes, algo)] row applies from [min_bytes] upward (the
    representation the [Topology.Autotune] sweep generates — see
    {!Coll_algos.Select.pin_table}).  [pinned_table_algorithm] reads the
    table in force. *)
val pin_table_algorithm : t -> coll:string -> (int * string) list -> unit

val pinned_table_algorithm : t -> coll:string -> (int * string) list option
val barrier : t -> unit

(** [bcast t dt ~send_recv_buf] broadcasts the root's vector into every
    rank's buffer (an in-out parameter).  The buffer length is the count
    and must agree on all ranks (the [Heavy] assertion level verifies
    this); for dynamically sized payloads use {!bcast_serialized}. *)
val bcast : ?root:int -> t -> 'a Mpisim.Datatype.t -> send_recv_buf:'a Ds.Vec.t -> unit

(** [bcast_single t dt v] broadcasts one value by value. *)
val bcast_single : ?root:int -> t -> 'a Mpisim.Datatype.t -> 'a -> 'a

(** [gather t dt ~send_buf] returns the concatenation on the root (an empty
    vector elsewhere).  All ranks must send equally many elements. *)
val gather :
  ?root:int ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  'a Ds.Vec.t

(** [gatherv t dt ~send_buf] gathers variable-size blocks; receive counts
    are gathered internally when not supplied. *)
val gatherv :
  ?root:int ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  ?recv_counts_out:bool ->
  ?recv_displs_out:bool ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  'a vresult

(** [allgather t dt ~send_buf] concatenates equal-size blocks on every
    rank. *)
val allgather :
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  'a Ds.Vec.t

(** [allgather_inplace t dt ~send_recv_buf] is the simplified MPI_IN_PLACE
    form (Sec. III-G): the buffer holds one slot per rank, with this rank's
    contribution at index [rank t]. *)
val allgather_inplace : t -> 'a Mpisim.Datatype.t -> send_recv_buf:'a Ds.Vec.t -> unit

(** [allgatherv t dt ~send_buf] — the paper's running example (Fig. 1-3).
    The one-argument form computes counts (allgather) and displacements
    (exclusive prefix sum) internally and returns the global vector by
    value. *)
val allgatherv :
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  ?recv_counts_out:bool ->
  ?recv_displs_out:bool ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  'a vresult

(** [scatter t dt ?send_buf] distributes the root's vector in equal blocks;
    the block size is broadcast when [?recv_count] is absent. *)
val scatter :
  ?root:int ->
  ?send_buf:'a Ds.Vec.t ->
  ?recv_count:int ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  'a Ds.Vec.t

(** [scatterv t dt ?send_buf ?send_counts] distributes variable blocks; each
    rank's count is scattered internally when [?recv_count] is absent. *)
val scatterv :
  ?root:int ->
  ?send_buf:'a Ds.Vec.t ->
  ?send_counts:int array ->
  ?send_displs:int array ->
  ?recv_count:int ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  'a Ds.Vec.t

(** [alltoall t dt ~send_buf] exchanges [length send_buf / size t] elements
    with every rank. *)
val alltoall :
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  'a Ds.Vec.t

(** [alltoallv t dt ~send_buf ~send_counts] — receive counts are exchanged
    with an internal [MPI_Alltoall] when missing; displacements by exclusive
    prefix sums. *)
val alltoallv :
  ?send_displs:int array ->
  ?recv_counts:int array ->
  ?recv_displs:int array ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  ?recv_counts_out:bool ->
  ?recv_displs_out:bool ->
  ?send_displs_out:bool ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  send_counts:int array ->
  'a vresult

(** [alltoallv_flat t dt flat] runs {!alltoallv} on a {!Flatten.flat}
    bundle (the [with_flattened] pattern from the BFS example). *)
val alltoallv_flat : t -> 'a Mpisim.Datatype.t -> 'a Flatten.flat -> 'a vresult

(** [reduce t dt op ~send_buf] element-wise reduces; the root receives the
    result vector, others an empty vector. *)
val reduce :
  ?root:int -> t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> send_buf:'a Ds.Vec.t -> 'a Ds.Vec.t

val allreduce :
  t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> send_buf:'a Ds.Vec.t -> 'a Ds.Vec.t

(** [allreduce_single t dt op v] reduces one value per rank — the idiom of
    the BFS termination check ([allreduce_single (frontier.empty) lAND]). *)
val allreduce_single : t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a

(** [reduce_single t dt op v] reduces one value per rank to the root
    ([Some result] there, [None] elsewhere). *)
val reduce_single : ?root:int -> t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a option

(** [gather_single t dt v] collects one value per rank on the root (an
    empty vector elsewhere). *)
val gather_single : ?root:int -> t -> 'a Mpisim.Datatype.t -> 'a -> 'a Ds.Vec.t

val scan : t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> send_buf:'a Ds.Vec.t -> 'a Ds.Vec.t
val scan_single : t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a

(** [exscan_single t dt op ~init v]: rank 0 receives [init] (MPI leaves it
    undefined; KaMPIng makes it explicit). *)
val exscan : t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> send_buf:'a Ds.Vec.t -> 'a Ds.Vec.t

val exscan_single : init:'a -> t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a

(** {1 Non-blocking collectives}

    Like the point-to-point wrappers, these own their buffers through the
    {!Nb_result.t} until completion. *)

(** [ibcast t dt ~send_recv_buf] starts a broadcast; the buffer is owned by
    the result and handed back once the operation completed. *)
val ibcast :
  ?root:int -> t -> 'a Mpisim.Datatype.t -> send_recv_buf:'a Ds.Vec.t -> 'a Ds.Vec.t Nb_result.t

(** [iallreduce t dt op ~send_buf] starts an element-wise allreduce. *)
val iallreduce :
  t -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> send_buf:'a Ds.Vec.t -> 'a Ds.Vec.t Nb_result.t

(** [ialltoallv t dt ~send_buf ~send_counts ~recv_counts] starts an
    irregular exchange.  Receive counts must be supplied: computing them
    would require communication, which a non-blocking call cannot hide. *)
val ialltoallv :
  ?send_displs:int array ->
  ?recv_displs:int array ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  send_counts:int array ->
  recv_counts:int array ->
  'a Ds.Vec.t Nb_result.t

(** {1 Point-to-point} *)

(** Default message tag used when [?tag] is omitted. *)
val default_tag : int

val send : ?tag:int -> t -> 'a Mpisim.Datatype.t -> send_buf:'a Ds.Vec.t -> dst:int -> unit

(** [recv t dt ~src] without [?count] first probes for the matching message
    so the result vector is sized exactly — no receive-size guessing. *)
val recv :
  ?tag:int ->
  ?count:int ->
  ?recv_buf:'a Ds.Vec.t ->
  ?recv_policy:Resize_policy.t ->
  t ->
  'a Mpisim.Datatype.t ->
  src:int ->
  'a Ds.Vec.t

(** [isend t dt ~send_buf ~dst] {e moves} the buffer into the non-blocking
    result, which returns it when the send completed (Fig. 6: no access to
    an in-flight buffer). *)
val isend :
  ?tag:int -> t -> 'a Mpisim.Datatype.t -> send_buf:'a Ds.Vec.t -> dst:int -> 'a Ds.Vec.t Nb_result.t

(** [issend] is {!isend} with synchronous-send completion semantics. *)
val issend :
  ?tag:int -> t -> 'a Mpisim.Datatype.t -> send_buf:'a Ds.Vec.t -> dst:int -> 'a Ds.Vec.t Nb_result.t

(** [irecv ~count t dt ~src] posts a receive of up to [count] elements; the
    received vector is only reachable through the non-blocking result. *)
val irecv :
  ?tag:int -> count:int -> t -> 'a Mpisim.Datatype.t -> src:int -> 'a Ds.Vec.t Nb_result.t

(** [iprobe t ~src ~tag] checks for a matching message. *)
val iprobe : ?tag:int -> t -> src:int -> Mpisim.Request.status option

(** {1 Persistent & partitioned operations (MPI-4)}

    The [*_init] wrappers validate once and return an {e inactive}
    {!Mpisim.Persist.t}; {!start} (or {!Request_pool.start_all}) arms a
    round, [Persist.wait]/[Persist.test] complete it, and
    {!free_request} releases the handle.  Receive-side wrappers allocate
    the standing buffer once and return it alongside the handle — each
    round's status carries the actual element count. *)

module Persist = Mpisim.Persist

(** [send_init t dt ~send_buf ~dst] is the persistent standard-mode send.
    The buffer's {e current backing array and length} are captured at init
    (persistent envelopes are fixed); its contents are re-read at each
    start.  Do not grow [send_buf] afterwards. *)
val send_init :
  ?tag:int -> t -> 'a Mpisim.Datatype.t -> send_buf:'a Ds.Vec.t -> dst:int -> Mpisim.Persist.t

(** [ssend_init] is {!send_init} with synchronous-send completion (each
    round completes when the receiver matched it). *)
val ssend_init :
  ?tag:int -> t -> 'a Mpisim.Datatype.t -> send_buf:'a Ds.Vec.t -> dst:int -> Mpisim.Persist.t

(** [recv_init ~count t dt ~src] builds a standing receive channel of
    capacity [count] (the datatype needs a [~default] element).  Returns
    the handle and the standing buffer; after each completed round the
    status' [count] says how many elements are valid. *)
val recv_init :
  ?tag:int ->
  count:int ->
  t ->
  'a Mpisim.Datatype.t ->
  src:int ->
  Mpisim.Persist.t * 'a Ds.Vec.t

(** [psend_init t dt ~send_buf ~partitions ~count ~dst] is the partitioned
    send ([count] elements {e per partition}; the buffer needs
    [partitions * count]).  Release partitions with [Persist.pready]. *)
val psend_init :
  ?tag:int ->
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  partitions:int ->
  count:int ->
  dst:int ->
  Mpisim.Persist.t

(** [precv_init ~partitions ~count t dt ~src] is the partitioned receive;
    poll per-partition arrival with [Persist.parrived]. *)
val precv_init :
  ?tag:int ->
  partitions:int ->
  count:int ->
  t ->
  'a Mpisim.Datatype.t ->
  src:int ->
  Mpisim.Persist.t * 'a Ds.Vec.t

(** [bcast_init t dt ~send_recv_buf] is the persistent broadcast; the root's
    buffer contents are re-read at each start. *)
val bcast_init :
  ?root:int -> t -> 'a Mpisim.Datatype.t -> send_recv_buf:'a Ds.Vec.t -> Mpisim.Persist.t

(** [start h] arms an inactive handle (MPI_Start). *)
val start : Mpisim.Persist.t -> unit

(** [startall hs] arms every handle (MPI_Startall). *)
val startall : Mpisim.Persist.t list -> unit

(** [free_request h] releases an inactive handle (MPI_Request_free). *)
val free_request : Mpisim.Persist.t -> unit

(** {1 Large counts (MPI-4 [MPI_Count])} *)

(** [send_sparse t dt ~count ~dst] sends [count] elements without a backing
    buffer — counts beyond {!Mpisim.Datatype.max_small_count} are
    first-class.  @raise Mpisim.Errors.Count_overflow on unrepresentable
    byte sizes. *)
val send_sparse : ?tag:int -> t -> 'a Mpisim.Datatype.t -> count:int -> dst:int -> unit

(** [recv_sparse t dt ~capacity ~src] receives a (possibly huge) message
    without a backing buffer; the status carries the true count. *)
val recv_sparse :
  ?tag:int -> t -> 'a Mpisim.Datatype.t -> capacity:int -> src:int -> Mpisim.Request.status

(** {1 Sessions (MPI-4 §11)} *)

(** [session ?name t] opens an isolated {!Mpisim.Session.t} for this rank
    (no communication, no shared counter). *)
val session : ?name:string -> t -> Mpisim.Session.t

(** [comm_of_pset s pname] derives a wrapped communicator over the named
    process set. *)
val comm_of_pset : Mpisim.Session.t -> string -> t

(** {1 Serialization (Sec. III-D3)} *)

val send_serialized : ?tag:int -> t -> 'a Serde.Codec.t -> 'a -> dst:int -> unit
val recv_serialized : ?tag:int -> t -> 'a Serde.Codec.t -> src:int -> 'a

(** [bcast_serialized t codec v] is the RAxML-NG one-liner
    ([bcast(send_recv_buf(as_serialized(obj)))], Fig. 11). *)
val bcast_serialized : ?root:int -> t -> 'a Serde.Codec.t -> 'a -> 'a

(** [allgather_serialized t codec v] gathers one arbitrary object per
    rank. *)
val allgather_serialized : t -> 'a Serde.Codec.t -> 'a -> 'a array

(** [alltoallv_serialized t codec messages] ships one arbitrary object per
    destination rank ([messages.(d)] goes to rank [d]) and returns what
    every rank sent here — the irregular-exchange counterpart of
    {!allgather_serialized}, e.g. for shuffling heap-structured data. *)
val alltoallv_serialized : t -> 'a Serde.Codec.t -> 'a array -> 'a array

(** {1 Communicator management} *)

val dup : t -> t
val split : t -> color:int -> key:int -> t option

(** [split_by_node t] splits by shared-memory node (the
    [MPI_Comm_split_type MPI_COMM_TYPE_SHARED] idiom): ranks on the same
    node of the simulated fabric end up in one communicator, ordered by
    [key] (default [0]: by parent rank).  On a flat fabric every rank is
    its own node, so each split communicator is a singleton. *)
val split_by_node : ?key:int -> t -> t

(** [node_of_rank t r] is the shared-memory node hosting rank [r] of this
    communicator (see {!Simnet.Netmodel.node_of}). *)
val node_of_rank : t -> int -> int
