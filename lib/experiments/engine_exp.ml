(* The [engine] experiment: scale and overhead of the simulator core.

   Four measurements, all written to BENCH_engine.json and self-validated
   (the file is re-read; every entry of its "checks" object must be true):

   - {b Speedup} — an identical synthetic halo-exchange workload runs on
     the frozen pre-refactor engine ({!Simnet.Legacy_engine}: binary heap,
     boxed queue entries, unpruned fiber list) and on the calendar-queue
     {!Simnet.Engine}; the events/sec ratio at p=4096 is the refactor's
     measured win and must clear 5x.
   - {b Ranks scaling} — the calendar engine's events/sec across
     p in {256, 1024, 4096, 16384}.  The queue is O(1) amortized per
     event, so throughput must stay roughly flat (within 4x of the best
     point) instead of degrading with the O(log p) heap slope, and the
     p=16384 point must finish inside the smoke-time budget.
   - {b Zero-alloc steady state} — [Gc.minor_words] across the run,
     divided by events executed: the pooled event loop must stay under a
     small constant per event (the workload's own boxed-float argument
     passing included); the legacy engine's figure is reported alongside.
   - {b Gallery subset} — events/sec over real MPI programs (three
     gallery examples via {!Mpisim.Mpi.with_run_collector}), plus the
     host-profiler pure-observer check: digests, event counts and
     simulated times are identical with profiling Off and Fine. *)

module J = Serde.Json
module Profile = Simnet.Profile

(* The engine surface the synthetic workload needs — satisfied by both
   the calendar engine and the frozen legacy engine. *)
module type CORE = sig
  type t

  val create : unit -> t
  val events_processed : t -> int
  val schedule : t -> delay:float -> (unit -> unit) -> unit
  val run : t -> unit
end

(* Synthetic halo exchange, shaped to be queue-dominated: every rank
   keeps [fanout] self-rescheduling callback chains in flight (its
   neighbour exchanges), each rescheduling with a deterministic
   per-chain delay jitter so events spread over distinct timestamps the
   way real per-link latencies do, until a shared event budget of
   [ranks * fanout * rounds] runs out.  The closures are preallocated —
   one per chain, reused every round — and the budget counter is a
   single hot cell, so the steady state measures the engine, not the
   workload.  The budget drains identically on any engine that executes
   the same schedule, so event counts must agree across engines. *)
module Synth (E : CORE) = struct
  let run ~ranks ~fanout ~rounds =
    let e = E.create () in
    let budget = ref (ranks * fanout * rounds) in
    for r = 0 to ranks - 1 do
      for lane = 0 to fanout - 1 do
        let jitter =
          float_of_int (((r * 2654435761) + (lane * 40503)) land 1023) *. 1e-9
        in
        let d = 1e-6 +. jitter in
        let rec fire () =
          decr budget;
          if !budget > 0 then E.schedule e ~delay:d fire
        in
        E.schedule e ~delay:((float_of_int lane *. 1e-7) +. jitter) fire
      done
    done;
    let w0 = Gc.minor_words () in
    let t0 = Profile.now_ns () in
    E.run e;
    let t1 = Profile.now_ns () in
    let w1 = Gc.minor_words () in
    let events = E.events_processed e in
    let wall = float_of_int (t1 - t0) /. 1e9 in
    (events, wall, (w1 -. w0) /. float_of_int events)

  (* Median wall-clock of [n] identical runs: the speedup gate must not
     flap on one noisy measurement. *)
  let median ~n ~ranks ~fanout ~rounds =
    let runs = List.init n (fun _ -> run ~ranks ~fanout ~rounds) in
    let events, _, _ = List.hd runs in
    List.iter
      (fun (ev, _, _) ->
        if ev <> events then failwith "engine: event count varied across repeat runs")
      runs;
    let walls = List.sort Float.compare (List.map (fun (_, w, _) -> w) runs) in
    let wpes = List.sort Float.compare (List.map (fun (_, _, a) -> a) runs) in
    (events, List.nth walls (n / 2), List.nth wpes (n / 2))
end

module Calendar = Synth (Simnet.Engine)
module Legacy = Synth (Simnet.Legacy_engine)

(* One self-rescheduling exchange chain per rank: the p=4096 point then
   holds 4096 concurrent events, the regime the calendar queue is sized
   for (and where the legacy heap pays its full O(log n) depth). *)
let fanout = 1
let event_target = 2_000_000

let rounds_for ranks = max 2 (event_target / (ranks * fanout))

let evps events wall = float_of_int events /. wall

(* ---------------- gallery subset ---------------- *)

let gallery_subset : (string * (unit -> string)) list =
  [
    ("halo_exchange", Gallery.Halo_exchange.digest);
    ("word_count", Gallery.Word_count.digest);
    ("sample_sort_example", Gallery.Sample_sort_example.digest);
  ]

type gallery_obs = {
  g_digests : string list;
  g_events : int;
  g_sim_times : float list;
  g_wall : float;
}

let observe_gallery () =
  let t0 = Profile.now_ns () in
  let (digests : string list), summaries =
    Mpisim.Mpi.with_run_collector (fun () ->
        List.map (fun (_, digest) -> digest ()) gallery_subset)
  in
  let t1 = Profile.now_ns () in
  {
    g_digests = digests;
    g_events = List.fold_left (fun a s -> a + s.Mpisim.Mpi.rs_events) 0 summaries;
    g_sim_times = List.map (fun s -> s.Mpisim.Mpi.rs_sim_time) summaries;
    g_wall = float_of_int (t1 - t0) /. 1e9;
  }

(* ---------------- self-validation ---------------- *)

let validate_json ~path ~json =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) json) then
    failwith (Printf.sprintf "engine: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "engine: BENCH_engine.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "engine: check %S failed" name))
    checks

(* Conservative absolute floor for the calendar engine on the p=4096
   synthetic exchange.  Calibrated at roughly 1/10 of the throughput on
   the development machine, so it flags an order-of-magnitude regression
   (a reverted queue, an accidentally quadratic loop) without tripping on
   slower CI hardware. *)
let evps_floor = 1_000_000.0

(* Per-event minor-heap budget for the pooled loop, in words.  The
   workload itself boxes one float argument per event (~3 words); the
   engine must add nothing on the steady-state path.  The legacy engine
   measures ~4-5x this. *)
let words_per_event_budget = 8.0

(* Host-seconds budget for the p=16384 scaling point (CI smoke). *)
let p16384_budget_s = 60.0

let run () =
  let p_main = 4096 in
  Printf.printf "synthetic halo exchange: %d lanes/rank, ~%d events per point\n\n" fanout
    event_target;

  (* speedup at the headline size: median of 3 runs per engine *)
  let rounds = rounds_for p_main in
  let l_events, l_wall, l_wpe = Legacy.median ~n:3 ~ranks:p_main ~fanout ~rounds in
  let c_events, c_wall, c_wpe = Calendar.median ~n:3 ~ranks:p_main ~fanout ~rounds in
  if l_events <> c_events then
    failwith
      (Printf.sprintf "engine: legacy and calendar event counts diverged (%d vs %d)" l_events
         c_events);
  let l_evps = evps l_events l_wall and c_evps = evps c_events c_wall in
  let speedup = c_evps /. l_evps in
  Printf.printf "p=%d (%d events):\n" p_main c_events;
  Printf.printf "  legacy   (binary heap): %10.0f events/s  %5.1f words/event\n" l_evps l_wpe;
  Printf.printf "  calendar (this PR):     %10.0f events/s  %5.1f words/event\n" c_evps c_wpe;
  Printf.printf "  speedup: %.2fx\n\n" speedup;

  (* ranks scaling on the calendar engine *)
  let sizes = [ 256; 1024; 4096; 16384 ] in
  let scaling =
    List.map
      (fun p ->
        let events, wall, _ = Calendar.run ~ranks:p ~fanout ~rounds:(rounds_for p) in
        let e = evps events wall in
        Printf.printf "  p=%-6d %10.0f events/s  (%d events, %.2fs)\n" p e events wall;
        (p, e, wall))
      sizes
  in
  let best = List.fold_left (fun a (_, e, _) -> Float.max a e) 0.0 scaling in
  let worst = List.fold_left (fun a (_, e, _) -> Float.min a e) infinity scaling in
  let scaling_flat = worst >= 0.25 *. best in
  let p16384_wall =
    match List.rev scaling with (_, _, w) :: _ -> w | [] -> infinity
  in
  Printf.printf "  flatness: worst/best = %.2f\n\n" (worst /. best);

  (* gallery subset, host profiler off vs fine *)
  let off = Profile.with_level Profile.Off observe_gallery in
  Profile.reset ();
  let fine = Profile.with_level Profile.Fine observe_gallery in
  let counter name =
    let snap = Profile.snapshot () in
    match List.assoc_opt name snap.Profile.counters with Some n -> n | None -> 0
  in
  let env_made = counter "mpi.envelopes_made" in
  let env_reused = counter "mpi.envelopes_reused" in
  Profile.reset ();
  let pure_observer =
    off.g_digests = fine.g_digests
    && off.g_events = fine.g_events
    && off.g_sim_times = fine.g_sim_times
  in
  let g_evps = evps off.g_events off.g_wall in
  Printf.printf "gallery subset (%s):\n"
    (String.concat ", " (List.map fst gallery_subset));
  Printf.printf "  %d events in %.2fs host = %10.0f events/s\n" off.g_events off.g_wall g_evps;
  Printf.printf "  profiler off vs fine: %s\n"
    (if pure_observer then "bit-identical" else "DIVERGED");
  Printf.printf "  envelope pool (fine run): %d made, %d reused (%.0f%% reuse)\n\n" env_made
    env_reused
    (100.0 *. float_of_int env_reused /. float_of_int (max 1 (env_made + env_reused)));

  let checks =
    [
      ("synthetic_events_equal", true);
      ("speedup_ge_5x", speedup >= 5.0);
      ("calendar_evps_floor", c_evps >= evps_floor);
      ("scaling_flat_within_4x", scaling_flat);
      ("p16384_in_budget", p16384_wall <= p16384_budget_s);
      ("zero_alloc_steady_state", c_wpe <= words_per_event_budget);
      ("profiler_pure_observer", pure_observer);
      ("envelopes_reused", env_reused > env_made);
    ]
  in
  List.iter (fun (name, ok) -> Printf.printf "  %-28s %b\n" name ok) checks;

  let json =
    J.Obj
      [
        ("experiment", J.Str "engine");
        ( "synthetic",
          J.Obj
            [
              ("ranks", J.Num (float_of_int p_main));
              ("fanout", J.Num (float_of_int fanout));
              ("events", J.Num (float_of_int c_events));
              ("legacy_events_per_s", J.Num l_evps);
              ("calendar_events_per_s", J.Num c_evps);
              ("speedup", J.Num speedup);
              ("legacy_minor_words_per_event", J.Num l_wpe);
              ("calendar_minor_words_per_event", J.Num c_wpe);
            ] );
        ( "scaling",
          J.List
            (List.map
               (fun (p, e, w) ->
                 J.Obj
                   [
                     ("ranks", J.Num (float_of_int p));
                     ("events_per_s", J.Num e);
                     ("wall_s", J.Num w);
                   ])
               scaling) );
        ( "gallery",
          J.Obj
            [
              ("examples", J.List (List.map (fun (n, _) -> J.Str n) gallery_subset));
              ("events", J.Num (float_of_int off.g_events));
              ("wall_s", J.Num off.g_wall);
              ("events_per_s", J.Num g_evps);
              ("envelopes_made", J.Num (float_of_int env_made));
              ("envelopes_reused", J.Num (float_of_int env_reused));
            ] );
        ("checks", J.Obj (List.map (fun (n, ok) -> (n, J.Bool ok)) checks));
      ]
  in
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_string oc "\n";
  close_out oc;
  validate_json ~path ~json;
  Printf.printf "\n  wrote %s (all checks pass)\n%!" path
