module J = Serde.Json
module Gen = Graphgen.Generators

let traced_run ~label ~ranks f =
  let res = Mpisim.Mpi.run ~trace:true ~ranks f in
  ignore (Mpisim.Mpi.results_exn res);
  match res.Mpisim.Mpi.trace with
  | Some data -> data
  | None -> failwith (Printf.sprintf "trace: no trace recorded for %s" label)

let sample_sort_trace ~ranks =
  traced_run ~label:"fig8 sample sort" ~ranks (fun comm ->
      let data =
        Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank:2_000 ~seed:8
      in
      let (_ : int array) = Apps.Ss_kamping.sort comm data in
      ())

let bfs_trace ~ranks =
  traced_run ~label:"fig10 BFS" ~ranks (fun comm ->
      let graph =
        Gen.generate Gen.Erdos_renyi ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks
          ~global_n:(1024 * ranks) ~avg_degree:8 ~seed:31
      in
      let (_ : int array) = Apps.Bfs_kamping.bfs comm graph ~src:0 in
      ())

(* Structural checks on the written file: it must parse back to the same
   value, contain a complete-event track for every rank of every process
   group, and pair every matched message's flow start with its finish. *)
let validate ~path ~json ~groups =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let parsed = J.parse text in
  if not (J.equal parsed json) then
    failwith (Printf.sprintf "trace: %s did not round-trip through Serde.Json" path);
  let evs =
    match J.member "traceEvents" parsed with
    | Some (J.List evs) -> evs
    | _ -> failwith (Printf.sprintf "trace: %s lacks a traceEvents list" path)
  in
  let field name ev = J.member name ev in
  let num_field name ev =
    match field name ev with Some (J.Num n) -> Some (int_of_float n) | _ -> None
  in
  let is_ph p ev = field "ph" ev = Some (J.Str p) in
  let starts = List.length (List.filter (is_ph "s") evs) in
  let finishes = List.length (List.filter (is_ph "f") evs) in
  if starts <> finishes then
    failwith (Printf.sprintf "trace: %d flow starts vs %d finishes" starts finishes);
  List.iter
    (fun (pid, ranks, matched) ->
      for r = 0 to ranks - 1 do
        let has_track =
          List.exists
            (fun ev ->
              is_ph "X" ev && num_field "pid" ev = Some pid && num_field "tid" ev = Some r)
            evs
        in
        if not has_track then
          failwith (Printf.sprintf "trace: no complete-event track for pid %d rank %d" pid r)
      done;
      let flows =
        List.length
          (List.filter (fun ev -> is_ph "s" ev && num_field "pid" ev = Some pid) evs)
      in
      if flows <> matched then
        failwith
          (Printf.sprintf "trace: pid %d has %d flow arrows for %d matched messages" pid flows
             matched))
    groups

let matched_count (d : Trace.Event.data) =
  List.length (List.filter Trace.Event.matched d.messages)

let run () =
  let ranks = 8 in
  let sort = sample_sort_trace ~ranks in
  let bfs = bfs_trace ~ranks in
  Printf.printf "-- fig8 sample sort (kamping, %d ranks) --\n" ranks;
  Trace.Summary.print (Trace.Analysis.analyze sort);
  Printf.printf "\n-- fig10 BFS (kamping, Erdos-Renyi, %d ranks) --\n" ranks;
  Trace.Summary.print (Trace.Analysis.analyze bfs);
  let events =
    Trace.Chrome.events ~pid:0 ~process_name:"fig8-sample-sort" sort
    @ Trace.Chrome.events ~pid:1 ~process_name:"fig10-bfs" bfs
  in
  let json = Trace.Chrome.wrap events in
  let path = "BENCH_trace.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  validate ~path ~json
    ~groups:[ (0, ranks, matched_count sort); (1, ranks, matched_count bfs) ];
  Printf.printf "\n  wrote %s (%d events; validated round-trip, tracks and flows)\n%!" path
    (List.length events)
