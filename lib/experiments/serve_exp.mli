(** The [serving] experiment: tail-latency benches of the sharded
    request-serving subsystem (lib/serve).

    Four measurements over one open-loop Zipf workload:

    - {b Batching} — a sweep over the aggregator block threshold; under
      per-message overhead the unbatched configuration saturates the hot
      server, so throughput must improve monotonically with the
      threshold up to a crossover.
    - {b Replica caching} — the same workload with and without the
      client cache; hot-key hits bypass the network, cutting p50.
    - {b Rebalancing} — a strongly skewed workload with LPT shard
      migration at the phase boundary; the load imbalance must drop.
    - {b Chaos + recovery} — the resilient driver under a random
      schedule with latency jitter and a mid-run kill; the survivors
      must recover through lib/ckpt and reproduce the oracle store
      bit-identically with a finite tail.

    Every run's final store is checked against the host-side oracle
    ({!Serve.expected_store_digest}).  Results go to
    [BENCH_serving.json]; the file is re-read and its [checks] object
    must be all-true, otherwise the experiment fails. *)

val run : unit -> unit
