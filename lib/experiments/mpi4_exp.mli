(** The MPI-4 surface benchmark: persistent-channel serving speedup,
    profile-invisibility of idle handles, and persistent-vs-ephemeral
    transport equivalence across random schedules.  Writes and
    self-validates [BENCH_mpi4.json] — [run] raises if any gate fails. *)

val run : unit -> unit
