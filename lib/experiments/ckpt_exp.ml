(* The checkpoint/restart experiment: interval × failure-rate sweep over
   the restartable label propagation app, bit-identity validation for
   both restartable apps, and the Young/Daly claim — the Daly-computed
   interval minimizes completion time under the injected failure rate.

   Every run in a sweep column faces the SAME deterministic time-based
   failure schedule (mpisim's [fail_at]); only the checkpoint policy
   differs, so completion-time differences isolate the
   too-often/too-rarely trade-off the Daly formula optimizes. *)

module J = Serde.Json
module Gen = Graphgen.Generators
module S = Ckpt.Schedule

(* ---------------- configuration ---------------- *)

let ranks = 8
let n_shards = 8
let lp_conf = (Gen.Rgg2d, 768, 6, 5, 160, 48) (* family, n, deg, seed, iters, max_cluster *)
let bfs_conf = (Gen.Erdos_renyi, 768, 6, 11, 0) (* family, n, deg, seed, src *)

(* Whole-system failure rates swept (failures per simulated second): MTBFs
   of 3 ms and 6 ms against a ~4.8 ms failure-free run.  The Daly formula
   assumes the optimal interval stays well below the MTBF and failures
   are memoryless; push the MTBF down toward a handful of interval
   lengths and the forced post-recovery checkpoints plus the
   deterministic (evenly spaced, not Poisson) kill schedule flatten the
   cost curve until longer-than-Daly intervals win by a hair, so the
   sweep stays in the regime the formula addresses. *)
let rates = [ 1. /. 3.0e-3; 1. /. 6.0e-3 ]

(* Deterministic failure schedule for rate [lambda] against a run whose
   failure-free length is [t_free]: [round (lambda * t_free)] failures
   (at least one), spread evenly over (0, 0.9*t_free] so the spacing the
   run experiences matches the nominal MTBF (compressing the kills into
   a narrow band would raise the local failure rate and shift the true
   optimal interval below Daly's).  Victims cycle through non-buddy
   ranks; every kill lands strictly inside every policy's run
   (completion only grows with checkpoint overhead and redo), so all
   sweep rows face the identical schedule.  [shift] slides the whole
   schedule by a fraction of the Daly interval: a single schedule
   rewards whichever policy happens to checkpoint right before the
   kills, so each policy is measured as the MEAN over an ensemble of
   phase-shifted schedules — the expectation the Daly formula
   optimizes. *)
let failure_schedule ~rate ~t_free ~shift =
  let victims = [| 1; 5; 3; 7; 2 |] in
  let n =
    min (Array.length victims) (max 1 (int_of_float ((rate *. t_free) +. 0.5)))
  in
  List.init n (fun k ->
      ( victims.(k),
        (0.9 *. t_free *. ((float_of_int k +. 0.5) /. float_of_int n)) +. shift ))

let n_phases = 5

(* ---------------- one measured run ---------------- *)

type stats = {
  mutable ckpt_cost : float;
  mutable checkpoints : int;
  mutable recoveries : int;
}

type row = {
  label : string;
  policy : S.policy;
  rate : float;  (** injected failure rate (failures/s) *)
  target : float;  (** resolved target interval (s) *)
  time : float;  (** simulated completion time (s) *)
  failures : int;  (** failures that actually struck *)
  stats : stats;
  identical : bool;
}

let lp_reference =
  lazy
    (let family, global_n, avg_degree, seed, iterations, max_cluster_size = lp_conf in
     let res =
       Mpisim.Mpi.run ~ranks:n_shards (fun comm ->
           let g =
             Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:n_shards
               ~global_n ~avg_degree ~seed
           in
           Apps.Lp_kamping.run comm g ~iterations ~max_cluster_size)
     in
     Mpisim.Mpi.results_exn res)

let bfs_reference =
  lazy
    (let family, global_n, avg_degree, seed, src = bfs_conf in
     let res =
       Mpisim.Mpi.run ~ranks:n_shards (fun comm ->
           let g =
             Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:n_shards
               ~global_n ~avg_degree ~seed
           in
           Apps.Bfs_kamping.bfs comm g ~src)
     in
     Mpisim.Mpi.results_exn res)

(* Gather the per-shard outputs of the surviving ranks and compare them,
   shard by shard, against the plain run on [n_shards] ranks. *)
let matches_reference reference survivor_outputs =
  let got = Hashtbl.create 16 in
  List.iter (List.iter (fun (s, arr) -> Hashtbl.replace got s arr)) survivor_outputs;
  Hashtbl.length got = n_shards
  && List.for_all
       (fun s -> Hashtbl.find_opt got s = Some reference.(s))
       (List.init n_shards Fun.id)

let survivors res =
  Array.to_list res.Mpisim.Mpi.results
  |> List.filter_map (function Ok v -> Some v | Error _ -> None)

(* [sim_time] of a run with a failure schedule includes the scheduled
   kill events themselves (even ones landing after every fiber is done),
   so completion is measured at application level: the last survivor's
   local clock when it returns. *)
let lp_run ~label ~policy ~rate ~fail_at =
  let family, global_n, avg_degree, seed, iterations, max_cluster_size = lp_conf in
  let stats = { ckpt_cost = 0.; checkpoints = 0; recoveries = 0 } in
  let target = ref infinity in
  let res =
    Mpisim.Mpi.run ~ranks ~fail_at (fun comm ->
        let out =
          Apps.Lp_resilient.run ~policy ~failure_rate:rate ~max_attempts:10
            ~on_complete:(fun ctx ->
              if Kamping.Comm.rank (Ckpt.comm ctx) = 0 then begin
                stats.ckpt_cost <- Ckpt.predicted_ckpt_cost ctx;
                stats.checkpoints <- Ckpt.checkpoints_taken ctx;
                stats.recoveries <- Ckpt.recoveries ctx;
                target := S.target_interval (Ckpt.schedule ctx)
              end)
            (Kamping.Comm.wrap comm) ~family ~n_shards ~global_n ~avg_degree ~seed
            ~iterations ~max_cluster_size
        in
        (out, Mpisim.Comm.now comm))
  in
  let finished = survivors res in
  let time = List.fold_left (fun acc (_, t) -> Float.max acc t) 0. finished in
  let struck = List.length (List.filter (fun (_, t) -> t <= time) fail_at) in
  {
    label;
    policy;
    rate;
    target = !target;
    time;
    failures = struck;
    stats;
    identical = matches_reference (Lazy.force lp_reference) (List.map fst finished);
  }

(* Mean over the phase-shifted schedule ensemble for one policy. *)
let lp_case ~label ~policy ~rate ~schedules =
  let runs = List.map (fun fail_at -> lp_run ~label ~policy ~rate ~fail_at) schedules in
  let n = float_of_int (List.length runs) in
  let first = List.hd runs in
  {
    first with
    time = List.fold_left (fun a r -> a +. r.time) 0. runs /. n;
    failures = List.fold_left (fun a r -> a + r.failures) 0 runs;
    identical = List.for_all (fun r -> r.identical) runs;
    stats =
      {
        ckpt_cost = first.stats.ckpt_cost;
        checkpoints =
          int_of_float
            (Float.round
               (float_of_int (List.fold_left (fun a r -> a + r.stats.checkpoints) 0 runs) /. n));
        recoveries = List.fold_left (fun a r -> a + r.stats.recoveries) 0 runs;
      };
  }

(* ---------------- the sweep ---------------- *)

type column = { col_rate : float; daly : row; others : row list }

let sweep () =
  (* Failure-free baseline: no checkpoints, no failures. *)
  let free = lp_run ~label:"baseline" ~policy:(S.Interval infinity) ~rate:0. ~fail_at:[] in
  (* Probe the per-checkpoint cost once so the fixed-interval grid can
     bracket the Daly point of each rate. *)
  let probe = lp_run ~label:"probe" ~policy:(S.Every_n 1) ~rate:0. ~fail_at:[] in
  let delta = probe.stats.ckpt_cost in
  let columns =
    List.map
      (fun rate ->
        let g_daly = S.daly_interval ~ckpt_cost:delta ~mtbf:(1. /. rate) in
        (* Shift step 4g/n_phases, centred on zero: with the grid
           multiples {1/4, 1/2, 2, 4} the five shifts sample the
           checkpoint phase of EVERY policy's cycle uniformly (0.8g mod
           m*g is equidistributed for each m), so no interval is
           systematically lucky about where kills land relative to its
           last checkpoint.  Centring keeps the shifted kills inside the
           run on both ends. *)
        let schedules =
          List.init n_phases (fun k ->
              failure_schedule ~rate ~t_free:free.time
                ~shift:
                  (float_of_int (k - (n_phases / 2))
                  *. 4. /. float_of_int n_phases *. g_daly))
        in
        let daly = lp_case ~label:"daly" ~policy:S.Daly ~rate ~schedules in
        let others =
          List.map
            (fun m ->
              lp_case
                ~label:(Printf.sprintf "%gx daly" m)
                ~policy:(S.Interval (m *. g_daly))
                ~rate ~schedules)
            [ 0.25; 0.5; 2.; 4. ]
          @ [
              lp_case ~label:"every iteration" ~policy:(S.Every_n 1) ~rate ~schedules;
              lp_case ~label:"no checkpoints" ~policy:(S.Interval infinity) ~rate ~schedules;
            ]
        in
        { col_rate = rate; daly; others })
      rates
  in
  (* Pure checkpoint overhead at the chosen (Daly) interval: same
     schedule, no failures actually injected. *)
  let overhead_runs =
    List.map (fun rate -> lp_run ~label:"daly, no failures" ~policy:S.Daly ~rate ~fail_at:[]) rates
  in
  (free, probe, columns, overhead_runs)

(* BFS bit-identity: failure-free on fewer ranks than shards, and a
   mid-run failure, both against the plain n_shards-rank search. *)
let bfs_runs () =
  let family, global_n, avg_degree, seed, src = bfs_conf in
  let search ?(fail_at = []) ~ranks () =
    Mpisim.Mpi.run ~ranks ~fail_at (fun comm ->
        Apps.Bfs_resilient.run ~policy:(S.Every_n 1) (Kamping.Comm.wrap comm) ~family
          ~n_shards ~global_n ~avg_degree ~seed ~src)
  in
  let reference = Lazy.force bfs_reference in
  let clean = search ~ranks:(ranks - 2) () in
  let base = search ~ranks () in
  let failed = search ~ranks ~fail_at:[ (3, 0.4 *. base.Mpisim.Mpi.sim_time) ] () in
  [
    ("bfs failure-free (6 ranks, 8 shards)", matches_reference reference (survivors clean));
    ("bfs recovered (rank 3 dies mid-search)", matches_reference reference (survivors failed));
  ]

(* ---------------- reporting, JSON, validation ---------------- *)

let row_cells free r =
  [
    r.label;
    (match r.policy with
    | S.Interval t when t = infinity -> "-"
    | S.Every_n _ -> "-"
    | _ -> Table_fmt.seconds r.target);
    Table_fmt.seconds r.time;
    Printf.sprintf "%+.1f%%" (100. *. ((r.time /. free.time) -. 1.));
    string_of_int r.stats.checkpoints;
    string_of_int r.stats.recoveries;
    string_of_int r.failures;
    (if r.identical then "yes" else "NO");
  ]

let json_of_row r =
  J.Obj
    [
      ("label", J.Str r.label);
      ("policy", J.Str (S.policy_name r.policy));
      ("rate_per_s", J.Num r.rate);
      ("target_interval_s", if r.target = infinity then J.Null else J.Num r.target);
      ("completion_time_s", J.Num r.time);
      ("checkpoints", J.Num (float_of_int r.stats.checkpoints));
      ("recoveries", J.Num (float_of_int r.stats.recoveries));
      ("failures_struck", J.Num (float_of_int r.failures));
      ("identical_to_reference", J.Bool r.identical);
    ]

let validate_json ~path ~json =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) json) then
    failwith (Printf.sprintf "ckpt: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "ckpt: BENCH_ckpt.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "ckpt: check %S failed" name))
    checks

let run () =
  let free, probe, columns, overhead_runs = sweep () in
  Printf.printf "restartable label propagation: %d ranks, %d shards\n" ranks n_shards;
  Printf.printf "failure-free completion %s; per-checkpoint cost (LogGP) %s\n\n"
    (Table_fmt.seconds free.time)
    (Table_fmt.seconds probe.stats.ckpt_cost);
  List.iter
    (fun { col_rate; daly; others } ->
      let all = daly :: others in
      Table_fmt.print_table
        ~title:
          (Printf.sprintf
             "failure rate %.0f/s (MTBF %s); mean of %d phase-shifted schedules" col_rate
             (Table_fmt.seconds (1. /. col_rate))
             n_phases)
        ~header:[ "policy"; "interval"; "time"; "vs free"; "ckpts"; "recov"; "fails"; "exact" ]
        (List.map (row_cells free) all))
    columns;
  let bfs = bfs_runs () in
  List.iter (fun (name, ok) -> Printf.printf "  %-45s %s\n" name (if ok then "exact" else "DIVERGED")) bfs;
  (* The three acceptance claims. *)
  let all_identical =
    List.for_all (fun c -> List.for_all (fun r -> r.identical) (c.daly :: c.others)) columns
    && free.identical && probe.identical
    && List.for_all (fun r -> r.identical) overhead_runs
    && List.for_all snd bfs
  in
  let daly_minimal =
    List.for_all (fun c -> List.for_all (fun r -> c.daly.time <= r.time) c.others) columns
  in
  let overheads =
    List.map (fun r -> (r.time -. free.time) /. free.time) overhead_runs
  in
  let overhead_ok = List.for_all (fun o -> o < 0.10) overheads in
  List.iter2
    (fun rate o ->
      Printf.printf "  checkpoint overhead at Daly interval (rate %.0f/s): %.1f%%\n" rate
        (100. *. o))
    rates overheads;
  Printf.printf "  all outputs bit-identical to reference: %b\n" all_identical;
  Printf.printf "  Daly minimal in every sweep column:     %b\n" daly_minimal;
  let json =
    J.Obj
      [
        ( "config",
          J.Obj
            [
              ("ranks", J.Num (float_of_int ranks));
              ("n_shards", J.Num (float_of_int n_shards));
              ("failure_free_time_s", J.Num free.time);
              ("ckpt_cost_s", J.Num probe.stats.ckpt_cost);
            ] );
        ( "sweep",
          J.List
            (List.map
               (fun c ->
                 J.Obj
                   [
                     ("rate_per_s", J.Num c.col_rate);
                     ("rows", J.List (List.map json_of_row (c.daly :: c.others)));
                   ])
               columns) );
        ("overhead_at_daly", J.List (List.map (fun o -> J.Num o) overheads));
        ( "bfs_identity",
          J.Obj (List.map (fun (name, ok) -> (name, J.Bool ok)) bfs) );
        ( "checks",
          J.Obj
            [
              ("recovered_runs_bit_identical", J.Bool all_identical);
              ("daly_interval_minimal_in_sweep", J.Bool daly_minimal);
              ("daly_overhead_below_10_percent", J.Bool overhead_ok);
            ] );
      ]
  in
  let path = "BENCH_ckpt.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  validate_json ~path ~json;
  Printf.printf "  wrote %s (validated: identity, Daly minimality, overhead)\n%!" path
