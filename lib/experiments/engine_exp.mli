(** The [engine] experiment: scale and overhead of the simulator core.

    Runs an identical synthetic halo-exchange workload on the frozen
    pre-refactor engine ({!Simnet.Legacy_engine}) and the calendar-queue
    {!Simnet.Engine} and gates the measured speedup (>= 5x at p=4096);
    sweeps the calendar engine's events/sec across rank counts up to
    p=16384 (throughput must stay roughly flat); asserts the pooled event
    loop's minor-heap cost per event stays under a small constant
    ([Gc.minor_words]-measured); and measures a gallery subset with the
    host profiler off vs fine, requiring bit-identical digests, event
    counts and simulated times (the profiler is a pure observer).

    Results go to [BENCH_engine.json]; the file is re-read and its
    [checks] object must be all-true, otherwise the experiment fails. *)

val run : unit -> unit
