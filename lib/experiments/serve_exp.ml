module J = Serde.Json

let ranks = 6

(* The shared workload: 12 streams at 150 k req/s each over 256 keys for
   2 ms.  With the contiguous initial placement the Zipf head lands on
   rank 0, whose per-message overheads (~1 us per request+reply) exceed
   its arrival rate when requests ship one per message — exactly the
   regime where batching pays. *)
let base =
  {
    Serve.n_keys = 256;
    n_shards = 12;
    zipf_s = 1.2;
    rate = 1.5e5;
    write_ratio = 0.1;
    duration = 2e-3;
    epoch = 0.5e-3;
    tick = 10e-6;
    flush_interval = 25e-6;
    batch_threshold = 16;
    cache_capacity = 0;
    rebalance = false;
    persistent = false;
    seed = 42;
  }

let thresholds = [ 1; 2; 4; 8; 16; 32; 64 ]

type row = { cfg : Serve.config; r : Serve.report; digest_ok : bool }

let observe cfg ~ranks =
  let r = Serve.run ~ranks cfg in
  { cfg; r; digest_ok = r.Serve.store_digest = Serve.expected_store_digest cfg }

let us x = 1e6 *. x

(* ---------------- chaos + recovery ---------------- *)

type chaos_result = {
  c_report : Serve.report;
  c_killed : int;  (* dead ranks in the final world *)
  c_digest_ok : bool;
  c_token : string;
}

let chaos_run cfg =
  let victim = 2 in
  let chaos =
    {
      Explore.jitter = 5e-6;
      jitter_buckets = 8;
      kills = [ (victim, 0.3 *. cfg.Serve.duration, 0.6 *. cfg.Serve.duration) ];
      kill_buckets = 16;
    }
  in
  let o =
    Explore.run ~strategy:(Explore.Random { seed = 2026 }) ~chaos ~ranks (fun comm ->
        Serve.resilient_body ~policy:(Ckpt.Schedule.Every_n 1) cfg comm)
  in
  match o.Explore.outcome with
  | Explore.Crashed e -> raise e
  | Explore.Finished res ->
      let report =
        Serve.summarize cfg ~ranks ~sim_time:res.Mpisim.Mpi.sim_time res.Mpisim.Mpi.results
      in
      let killed =
        Array.fold_left
          (fun acc -> function Ok _ -> acc | Error _ -> acc + 1)
          0 res.Mpisim.Mpi.results
      in
      {
        c_report = report;
        c_killed = killed;
        c_digest_ok = report.Serve.store_digest = Serve.expected_store_digest cfg;
        c_token = Explore.token_to_string o.Explore.token;
      }

(* ---------------- self-validation ---------------- *)

let validate_json ~path ~json =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) json) then
    failwith (Printf.sprintf "serving: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "serving: BENCH_serving.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "serving: check %S failed" name))
    checks

let run () =
  Printf.printf "sharded request serving: %d ranks, %d shards, %d keys, zipf s=%.1f\n"
    ranks base.Serve.n_shards base.Serve.n_keys base.Serve.zipf_s;
  Printf.printf "open loop: %.0f req/s per stream for %.1f ms (%d requests total)\n\n"
    base.Serve.rate (1e3 *. base.Serve.duration) (Serve.expected_issued base);

  (* batching sweep *)
  let sweep =
    List.map (fun t -> observe { base with Serve.batch_threshold = t } ~ranks) thresholds
  in
  Table_fmt.print_table ~title:"request batching (aggregator threshold sweep)"
    ~header:[ "block"; "tput req/s"; "p50"; "p99"; "sim time"; "exact" ]
    (List.map
       (fun { cfg; r; digest_ok } ->
         [
           string_of_int cfg.Serve.batch_threshold;
           Printf.sprintf "%.3g" r.Serve.throughput;
           Printf.sprintf "%.1f us" (us r.Serve.p50);
           Printf.sprintf "%.1f us" (us r.Serve.p99);
           Table_fmt.seconds r.Serve.sim_time;
           (if digest_ok then "yes" else "NO");
         ])
       sweep);
  let tputs = List.map (fun { r; _ } -> r.Serve.throughput) sweep in
  let peak = List.fold_left Float.max 0.0 tputs in
  let argmax =
    let rec go i best besti = function
      | [] -> besti
      | t :: rest -> if t > best then go (i + 1) t i rest else go (i + 1) best besti rest
    in
    go 0 neg_infinity 0 tputs
  in
  (* nondecreasing (2% slack) up to the peak, and the peak is a real win *)
  let monotone =
    let arr = Array.of_list tputs in
    let ok = ref true in
    for i = 0 to argmax - 1 do
      if arr.(i + 1) < 0.98 *. arr.(i) then ok := false
    done;
    !ok
  in
  let speedup = peak /. List.hd tputs in
  Printf.printf "  batching speedup at peak (block %d): %.2fx\n\n"
    (List.nth thresholds argmax) speedup;

  (* replica caching *)
  let uncached = observe { base with Serve.cache_capacity = 0 } ~ranks in
  let cached = observe { base with Serve.cache_capacity = 32 } ~ranks in
  Printf.printf "replica caching (capacity 32/rank): hit rate %.0f%%, p50 %.1f -> %.1f us, p99 %.1f -> %.1f us\n\n"
    (100.0 *. cached.r.Serve.hit_rate)
    (us uncached.r.Serve.p50) (us cached.r.Serve.p50) (us uncached.r.Serve.p99)
    (us cached.r.Serve.p99);

  (* rebalancing, on a harder skew *)
  let skewed = { base with Serve.zipf_s = 1.4; seed = 43 } in
  let rebalanced = observe { skewed with Serve.rebalance = true } ~ranks in
  Printf.printf "LPT rebalancing at the phase boundary (s=%.1f): imbalance %.2f -> %.2f\n\n"
    skewed.Serve.zipf_s rebalanced.r.Serve.imbalance_before rebalanced.r.Serve.imbalance_after;

  (* chaos: jitter + a mid-run kill, recovery through lib/ckpt *)
  let chaos = chaos_run base in
  Printf.printf
    "chaos (jitter 5 us, kill rank 2 in [%.1f, %.1f] ms): %d killed, %d recoveries, p99 %.1f us, store %s\n"
    (1e3 *. 0.3 *. base.Serve.duration)
    (1e3 *. 0.6 *. base.Serve.duration)
    chaos.c_killed chaos.c_report.Serve.recoveries
    (us chaos.c_report.Serve.p99)
    (if chaos.c_digest_ok then "bit-identical" else "DIVERGED");
  Printf.printf "  replay token: %s\n\n" chaos.c_token;

  let all_digests_ok =
    List.for_all (fun { digest_ok; _ } -> digest_ok) sweep
    && uncached.digest_ok && cached.digest_ok && rebalanced.digest_ok
  in
  let caching_cuts_p50 = cached.r.Serve.p50 < uncached.r.Serve.p50 in
  let rebalance_ok =
    rebalanced.r.Serve.imbalance_after < rebalanced.r.Serve.imbalance_before
  in
  let chaos_p99_finite =
    Float.is_finite chaos.c_report.Serve.p99 && chaos.c_report.Serve.p99 > 0.0
  in
  let chaos_ok =
    chaos.c_digest_ok && chaos.c_killed = 1 && chaos.c_report.Serve.recoveries >= 1
  in
  Printf.printf "  batching monotone to crossover: %b (peak %.2fx)\n" monotone speedup;
  Printf.printf "  caching cuts p50:               %b\n" caching_cuts_p50;
  Printf.printf "  rebalancing reduces imbalance:  %b\n" rebalance_ok;
  Printf.printf "  chaos run recovered exactly:    %b\n" chaos_ok;
  Printf.printf "  all stores match the oracle:    %b\n" all_digests_ok;

  let json_of_report (r : Serve.report) =
    J.Obj
      [
        ("issued", J.Num (float_of_int r.Serve.issued));
        ("completed", J.Num (float_of_int r.Serve.completed));
        ("throughput_rps", J.Num r.Serve.throughput);
        ("p50_s", J.Num r.Serve.p50);
        ("p99_s", J.Num r.Serve.p99);
        ("max_latency_s", J.Num r.Serve.max_latency);
        ("hit_rate", J.Num r.Serve.hit_rate);
        ("sim_time_s", J.Num r.Serve.sim_time);
      ]
  in
  let json =
    J.Obj
      [
        ( "config",
          J.Obj
            [
              ("ranks", J.Num (float_of_int ranks));
              ("n_shards", J.Num (float_of_int base.Serve.n_shards));
              ("n_keys", J.Num (float_of_int base.Serve.n_keys));
              ("zipf_s", J.Num base.Serve.zipf_s);
              ("rate_per_stream", J.Num base.Serve.rate);
              ("write_ratio", J.Num base.Serve.write_ratio);
              ("duration_s", J.Num base.Serve.duration);
              ("requests", J.Num (float_of_int (Serve.expected_issued base)));
            ] );
        ( "batching",
          J.List
            (List.map
               (fun { cfg; r; digest_ok } ->
                 J.Obj
                   [
                     ("threshold", J.Num (float_of_int cfg.Serve.batch_threshold));
                     ("report", json_of_report r);
                     ("digest_ok", J.Bool digest_ok);
                   ])
               sweep) );
        ( "caching",
          J.Obj
            [
              ("off", json_of_report uncached.r);
              ("on", json_of_report cached.r);
              ("capacity", J.Num 32.0);
            ] );
        ( "rebalancing",
          J.Obj
            [
              ("zipf_s", J.Num skewed.Serve.zipf_s);
              ("imbalance_before", J.Num rebalanced.r.Serve.imbalance_before);
              ("imbalance_after", J.Num rebalanced.r.Serve.imbalance_after);
              ("report", json_of_report rebalanced.r);
            ] );
        ( "chaos",
          J.Obj
            [
              ("killed_ranks", J.Num (float_of_int chaos.c_killed));
              ("recoveries", J.Num (float_of_int chaos.c_report.Serve.recoveries));
              ("report", json_of_report chaos.c_report);
              ("digest_ok", J.Bool chaos.c_digest_ok);
              ("replay_token", J.Str chaos.c_token);
            ] );
        ( "checks",
          J.Obj
            [
              ("batching_monotone_to_crossover", J.Bool monotone);
              ("batching_speedup_at_peak_over_5_percent", J.Bool (speedup >= 1.05));
              ("caching_cuts_p50", J.Bool caching_cuts_p50);
              ("rebalancing_reduces_imbalance", J.Bool rebalance_ok);
              ("chaos_recovers_bit_identical", J.Bool chaos_ok);
              ("chaos_p99_finite", J.Bool chaos_p99_finite);
              ("store_digests_match_oracle", J.Bool all_digests_ok);
            ] );
      ]
  in
  let path = "BENCH_serving.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  validate_json ~path ~json;
  Printf.printf "  wrote %s (all checks passed)\n%!" path
