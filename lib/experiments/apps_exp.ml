(* The application-gallery benchmark (BENCH_apps.json): the scenario
   wave's three workloads as self-validated gates.

   1. {b PageRank exchange crossover} — one PageRank configuration per
      (family, degree) cell, run through the sparse (NBX), dense (tuned
      alltoallv) and neighborhood-collective exchange variants.  The
      interesting output is the crossover: low-locality families
      amortize the dense exchange, high-locality ones favour the
      sparse/neighbor paths.  Gate: all variants bit-identical to the
      sequential oracle; the timing spread is reported, not gated.

   2. {b CG transport parity} — the stencil solve through p2p,
      persistent-channel and RMA halos.  Gate: bit-identical iterates
      and residuals; p2p and persistent within a noise band (they issue
      the same message pattern), RMA reported.

   3. {b Streaming windows} — the aggregator pipeline against the
      sequential oracle, exact. *)

module J = Serde.Json
module K = Kamping.Comm
module C = Apps.Cg_stencil
module S = Apps.Stream_analytics
module Gen = Graphgen.Generators

(* ---------------- gate 1: pagerank crossover ---------------- *)

let pr_ranks = 8
let pr_n = 256
let pr_alpha = 0.85
let pr_iters = 6

type pr_row = {
  family : Gen.family;
  degree : int;
  times : (Apps.Gexchange.variant * float) list;
  exact : bool;
}

let pagerank_cell family degree =
  let seed = 71 in
  let expect =
    Apps.Pagerank.reference family ~global_n:pr_n ~avg_degree:degree ~seed ~alpha:pr_alpha
      ~iters:pr_iters
  in
  let one variant =
    let res =
      Mpisim.Mpi.run ~ranks:pr_ranks (fun raw ->
          let g =
            Gen.generate family ~rank:(Mpisim.Comm.rank raw) ~comm_size:pr_ranks ~global_n:pr_n
              ~avg_degree:degree ~seed
          in
          Apps.Pagerank.run ~variant (K.wrap raw) g ~alpha:pr_alpha ~iters:pr_iters)
    in
    let scores = Array.concat (Array.to_list (Mpisim.Mpi.results_exn res)) in
    (res.Mpisim.Mpi.sim_time, scores = expect)
  in
  let cells = List.map (fun v -> (v, one v)) Apps.Gexchange.all_variants in
  {
    family;
    degree;
    times = List.map (fun (v, (t, _)) -> (v, t)) cells;
    exact = List.for_all (fun (_, (_, ok)) -> ok) cells;
  }

let pr_cells = [ (Gen.Erdos_renyi, 4); (Gen.Erdos_renyi, 12); (Gen.Rgg2d, 4); (Gen.Rgg2d, 12) ]

let winner row =
  match List.sort (fun (_, a) (_, b) -> compare a b) row.times with
  | (v, _) :: _ -> Apps.Gexchange.variant_name v
  | [] -> "-"

(* ---------------- gate 2: cg transport parity ---------------- *)

let cg_ranks = 6
let cg_dims = [| 3; 2 |]
let cg_nx = 30
let cg_ny = 24
let cg_iters = 20
let cg_seed = 17

type cg_row = { transport : C.transport; time : float; exact : bool }

let cg_runs () =
  let ref_field, ref_rr = C.reference ~dims:cg_dims ~nx:cg_nx ~ny:cg_ny ~iters:cg_iters ~seed:cg_seed in
  let assemble rs =
    let field = Array.make (cg_nx * cg_ny) 0.0 in
    Array.iter
      (fun r ->
        for k = 0 to (r.C.lx * r.C.ly) - 1 do
          field.(((r.C.gi0 + (k / r.C.ly)) * cg_ny) + r.C.gj0 + (k mod r.C.ly)) <- r.C.x.(k)
        done)
      rs;
    field
  in
  List.map
    (fun transport ->
      let res =
        Mpisim.Mpi.run ~ranks:cg_ranks (fun raw ->
            C.solve ~transport (K.wrap raw) ~dims:cg_dims ~nx:cg_nx ~ny:cg_ny ~iters:cg_iters
              ~seed:cg_seed)
      in
      let rs = Mpisim.Mpi.results_exn res in
      let exact = assemble rs = ref_field && Array.for_all (fun r -> r.C.rr = ref_rr) rs in
      { transport; time = res.Mpisim.Mpi.sim_time; exact })
    C.all_transports

let time_of rows t = (List.find (fun r -> r.transport = t) rows).time

(* ---------------- gate 3: streaming windows ---------------- *)

let stream_cfg =
  {
    S.n_shards = 8;
    windows = 4;
    events_per_shard = 64;
    n_keys = 16;
    n_values = 48;
    topk = 4;
    threshold = 16;
    flush_every = 40e-6;
    seed = 29;
  }

let stream_run () =
  let expect = S.reference stream_cfg in
  let res = Mpisim.Mpi.run ~ranks:4 (fun raw -> S.run (K.wrap raw) stream_cfg) in
  let per_rank = Mpisim.Mpi.results_exn res in
  (res.Mpisim.Mpi.sim_time, Array.for_all (fun r -> r = expect) per_rank)

(* ---------------- self-validation ---------------- *)

let validate_json ~path ~json =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) json) then
    failwith (Printf.sprintf "apps: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "apps: BENCH_apps.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "apps: check %S failed" name))
    checks

let run () =
  Printf.printf "Application gallery: exchange crossover, CG halo transports, streaming windows\n\n";
  let pr_rows = List.map (fun (f, d) -> pagerank_cell f d) pr_cells in
  Table_fmt.print_table
    ~title:
      (Printf.sprintf "PageRank exchange variants (p=%d, n=%d, %d iters)" pr_ranks pr_n pr_iters)
    ~header:[ "family"; "degree"; "sparse"; "dense"; "neighbor"; "fastest"; "exact" ]
    (List.map
       (fun row ->
         Gen.family_name row.family :: string_of_int row.degree
         :: List.map (fun (_, t) -> Table_fmt.seconds t) row.times
         @ [ winner row; string_of_bool row.exact ])
       pr_rows);
  print_endline "  (dense amortizes on low-locality families; locality favours sparse/neighbor)";
  let pr_ok = List.for_all (fun (r : pr_row) -> r.exact) pr_rows in

  let cg_rows = cg_runs () in
  Table_fmt.print_table
    ~title:
      (Printf.sprintf "CG halo transports (%dx%d grid, %dx%d ranks, %d iters)" cg_nx cg_ny
         cg_dims.(0) cg_dims.(1) cg_iters)
    ~header:[ "transport"; "sim time"; "exact" ]
    (List.map
       (fun r -> [ C.transport_name r.transport; Table_fmt.seconds r.time; string_of_bool r.exact ])
       cg_rows);
  let cg_exact = List.for_all (fun r -> r.exact) cg_rows in
  (* p2p and persistent halos move the same bytes over the same edges;
     their times may only differ by per-call software setup noise *)
  let p2p_t = time_of cg_rows C.P2p and pers_t = time_of cg_rows C.Persistent in
  let cg_noise = max p2p_t pers_t /. min p2p_t pers_t in
  let cg_noise_ok = cg_noise <= 1.25 in
  Printf.printf "  p2p vs persistent spread: %.3fx (gate <= 1.25x)\n\n" cg_noise;

  let stream_time, stream_ok = stream_run () in
  Printf.printf "Streaming windows: %d windows over %d shards in %s — oracle exact: %b\n\n"
    stream_cfg.S.windows stream_cfg.S.n_shards (Table_fmt.seconds stream_time) stream_ok;

  let json =
    J.Obj
      [
        ( "config",
          J.Obj
            [
              ( "pagerank",
                J.Obj
                  [
                    ("ranks", J.Num (float_of_int pr_ranks));
                    ("global_n", J.Num (float_of_int pr_n));
                    ("iters", J.Num (float_of_int pr_iters));
                  ] );
              ( "cg",
                J.Obj
                  [
                    ("ranks", J.Num (float_of_int cg_ranks));
                    ("nx", J.Num (float_of_int cg_nx));
                    ("ny", J.Num (float_of_int cg_ny));
                    ("iters", J.Num (float_of_int cg_iters));
                  ] );
              ( "stream",
                J.Obj
                  [
                    ("shards", J.Num (float_of_int stream_cfg.S.n_shards));
                    ("windows", J.Num (float_of_int stream_cfg.S.windows));
                  ] );
            ] );
        ( "pagerank_crossover",
          J.List
            (List.map
               (fun row ->
                 J.Obj
                   (("family", J.Str (Gen.family_name row.family))
                    :: ("degree", J.Num (float_of_int row.degree))
                    :: ("fastest", J.Str (winner row))
                    :: List.map
                         (fun (v, t) -> (Apps.Gexchange.variant_name v, J.Num t))
                         row.times))
               pr_rows) );
        ( "cg_transports",
          J.Obj
            (("p2p_vs_persistent_spread", J.Num cg_noise)
             :: List.map (fun r -> (C.transport_name r.transport, J.Num r.time)) cg_rows) );
        ("stream_sim_time_s", J.Num stream_time);
        ( "checks",
          J.Obj
            [
              ("pagerank_variants_oracle_exact", J.Bool pr_ok);
              ("cg_transports_bit_identical", J.Bool cg_exact);
              ("cg_p2p_persistent_within_noise", J.Bool cg_noise_ok);
              ("stream_oracle_exact", J.Bool stream_ok);
            ] );
      ]
  in
  let path = "BENCH_apps.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  validate_json ~path ~json;
  Printf.printf "wrote %s (all checks green)\n" path
