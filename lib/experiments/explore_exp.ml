module J = Serde.Json

let ranks = 8
let n_per_rank = 1_000
let repeats = 5

let workload comm =
  let data =
    Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:8
  in
  let sorted = Apps.Ss_kamping.sort comm data in
  (Array.length sorted, Array.fold_left ( + ) 0 sorted)

type sample = { host_ms : float; sim_time : float; events : int; digest : string }

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, (Sys.time () -. t0) *. 1e3)

let observe = function
  | Explore.Pass d -> d
  | Explore.Fail reason -> failwith ("explore: workload failed: " ^ reason)

let measure mode =
  List.init repeats (fun i ->
      match mode with
      | `Off ->
          let r, host_ms = timed (fun () -> Explore.unexplored (fun () ->
              Mpisim.Checker.with_level Mpisim.Checker.Communication (fun () ->
                  Mpisim.Mpi.run ~ranks workload)))
          in
          ignore (Mpisim.Mpi.results_exn r);
          { host_ms;
            sim_time = r.Mpisim.Mpi.sim_time;
            events = r.Mpisim.Mpi.events;
            digest = "" }
      | `Default | `Random ->
          let strategy =
            match mode with
            | `Random -> Explore.Random { seed = 1000 + i }
            | _ -> Explore.Default
          in
          let o, host_ms = timed (fun () -> Explore.run ~strategy ~ranks workload) in
          let digest = observe (Explore.verdict_of o) in
          (match o.Explore.outcome with
          | Explore.Finished r ->
              { host_ms; sim_time = r.Mpisim.Mpi.sim_time; events = r.Mpisim.Mpi.events; digest }
          | Explore.Crashed e -> raise e))

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let run () =
  Printf.printf "exploration overhead, sample sort (%d ranks, %d keys/rank, %d repeats):\n\n"
    ranks n_per_rank repeats;
  let off = measure `Off in
  let dflt = measure `Default in
  let rand = measure `Random in
  let host samples = mean (List.map (fun s -> s.host_ms) samples) in
  let report name samples =
    let s = List.hd samples in
    Printf.printf "  %-10s %8.2f ms/run host   sim %8.1f us   %7d events\n" name
      (host samples) (1e6 *. s.sim_time) s.events
  in
  report "off" off;
  report "default" dflt;
  report "random" rand;
  Printf.printf "\n  default-strategy host overhead over off: %+.1f%%\n"
    (100.0 *. ((host dflt /. host off) -. 1.0));

  (* (a) Default is a pure observer at the simulation level *)
  let o = List.hd off and d = List.hd dflt in
  if o.sim_time <> d.sim_time || o.events <> d.events then
    failwith
      (Printf.sprintf
         "explore: Default is not a pure observer (off: %g s / %d events, default: %g s / %d events)"
         o.sim_time o.events d.sim_time d.events);
  List.iter
    (fun s ->
      if s.sim_time <> d.sim_time || s.events <> d.events then
        failwith "explore: Default runs are not reproducible")
    dflt;

  (* (b) every random schedule agreed on the result *)
  let ref_digest = d.digest in
  List.iter
    (fun s ->
      if s.digest <> ref_digest then
        failwith "explore: random schedule produced a different result digest")
    rand;
  Printf.printf "  default pure observer: yes; %d random schedules agree: yes\n" (List.length rand);

  let mode_json name samples =
    let s = List.hd samples in
    J.Obj
      [
        ("mode", J.Str name);
        ("host_ms_mean", J.Num (host samples));
        ("sim_time_s", J.Num s.sim_time);
        ("events", J.Num (float_of_int s.events));
      ]
  in
  let json =
    J.Obj
      [
        ("workload", J.Str "sample_sort");
        ("ranks", J.Num (float_of_int ranks));
        ("n_per_rank", J.Num (float_of_int n_per_rank));
        ("repeats", J.Num (float_of_int repeats));
        ("modes", J.List [ mode_json "off" off; mode_json "default" dflt; mode_json "random" rand ]);
        ("default_pure_observer", J.Bool true);
        ("random_schedules_agree", J.Bool true);
      ]
  in
  let path = "BENCH_explore.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  Printf.printf "  wrote %s\n%!" path
