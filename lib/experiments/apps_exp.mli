(** The application-gallery benchmark: PageRank exchange-variant
    crossover, CG halo-transport parity, and streaming-window oracle
    exactness.  Writes and self-validates [BENCH_apps.json] — [run]
    raises if any gate fails. *)

val run : unit -> unit
