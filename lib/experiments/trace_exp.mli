(** The [trace] experiment: event-trace the fig. 8 sample sort and the
    fig. 10 BFS (KaMPIng bindings, 8 ranks each), print wait-state and
    critical-path summaries, and write both timelines into
    [BENCH_trace.json] (Chrome trace-event format, one process group per
    application — load it in Perfetto).

    The written file is read back and re-parsed through [Serde.Json]; any
    round-trip or structural failure (missing per-rank tracks, flow-event
    mismatch) raises, so a CI smoke invocation exits non-zero on
    regression. *)

val run : unit -> unit
