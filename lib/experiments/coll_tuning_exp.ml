(* Collective-tuning sweep: predicted vs simulated crossover table.

   For each tuned collective and each (rank count, element count) point we
   pin every candidate algorithm in turn, run one call on the simulator,
   and take the slowest rank's completion time; next to it we put the LogGP
   prediction the selector used.  The selector's pick ("selected") can then
   be compared against both the incumbent (the algorithm the library
   hardcoded before tuning) and the empirically fastest variant. *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype
module Algo = Coll_algos.Algo
module Cost = Coll_algos.Cost
module Select = Coll_algos.Select

type algo_result = { algo : string; predicted : float; simulated : float }

type case = {
  coll : string;
  p : int;
  count : int;
  bytes : int;
  selected : string;
  incumbent : string;
  results : algo_result list;
}

let prm = Simnet.Netmodel.default
let op = Mpisim.Op.int_sum

(* Max completion time across ranks of one pinned collective call. *)
let simulate ~coll ~algo ~p ~count =
  let times =
    Mpisim.Mpi.run_exn ~ranks:p (fun raw ->
        C.pin_algorithm raw ~coll ~algo;
        let r = Mpisim.Comm.rank raw in
        let t0 = Mpisim.Comm.now raw in
        (match coll with
        | "bcast" ->
            let buf = Array.make count r in
            C.bcast raw D.int buf ~root:0
        | "allreduce" ->
            let sendbuf = Array.make count r and recvbuf = Array.make count 0 in
            C.allreduce raw D.int op ~sendbuf ~recvbuf ~count
        | "allgather" ->
            let sendbuf = Array.make count r and recvbuf = Array.make (p * count) 0 in
            C.allgather raw D.int ~sendbuf ~recvbuf ~count
        | "alltoall" ->
            let sendbuf = Array.make (p * count) r and recvbuf = Array.make (p * count) 0 in
            C.alltoall raw D.int ~sendbuf ~recvbuf ~count
        | _ -> invalid_arg coll);
        Mpisim.Comm.now raw -. t0)
  in
  Array.fold_left Float.max 0.0 times

(* Candidates, predictions and the selector's choice, per collective.  The
   selection call mirrors what the dispatcher does (same inputs, fresh
   table, no pins), so "selected" is exactly what an untuned run picks. *)
let describe ~coll ~p ~count =
  let bytes = D.bytes D.int count in
  let fresh = Select.create () in
  match coll with
  | "bcast" ->
      ( bytes,
        List.map
          (fun a -> (Algo.bcast_name a, Cost.bcast prm ~p ~bytes a))
          Algo.all_bcast,
        Algo.bcast_name (Select.bcast fresh ~cid:0 prm ~p ~bytes),
        Algo.bcast_name Bcast_binomial )
  | "allreduce" ->
      let op_cost = Mpisim.Op.cost_per_element op in
      ( bytes,
        List.map
          (fun a -> (Algo.allreduce_name a, Cost.allreduce prm ~p ~bytes ~elems:count ~op_cost a))
          Algo.all_allreduce,
        Algo.allreduce_name
          (Select.allreduce fresh ~cid:0 prm ~p ~bytes ~elems:count ~op_cost ~commutative:true),
        Algo.allreduce_name Ar_reduce_bcast )
  | "allgather" ->
      let feasible a = a <> Algo.Ag_recursive_doubling || p land (p - 1) = 0 in
      ( bytes,
        List.filter_map
          (fun a ->
            if feasible a then Some (Algo.allgather_name a, Cost.allgather prm ~p ~bytes a)
            else None)
          Algo.all_allgather,
        Algo.allgather_name (Select.allgather fresh ~cid:0 prm ~p ~bytes),
        Algo.allgather_name Ag_bruck )
  | "alltoall" ->
      ( bytes,
        List.map
          (fun a -> (Algo.alltoall_name a, Cost.alltoall prm ~p ~bytes a))
          Algo.all_alltoall,
        Algo.alltoall_name (Select.alltoall fresh ~cid:0 prm ~p ~bytes),
        Algo.alltoall_name A2a_pairwise )
  | _ -> invalid_arg coll

let sweep_point ~coll ~p ~count =
  let bytes, predictions, selected, incumbent = describe ~coll ~p ~count in
  let results =
    List.map
      (fun (algo, predicted) ->
        { algo; predicted; simulated = simulate ~coll ~algo ~p ~count })
      predictions
  in
  { coll; p; count; bytes; selected; incumbent; results }

let grid =
  [
    ("bcast", [ 1; 1024; 65536 ]);
    ("allreduce", [ 1; 1024; 65536 ]);
    ("allgather", [ 1; 512; 16384 ]);
    ("alltoall", [ 1; 256; 4096 ]);
  ]

let rank_counts = [ 4; 16 ]

let sweep () =
  List.concat_map
    (fun (coll, counts) ->
      List.concat_map
        (fun p -> List.map (fun count -> sweep_point ~coll ~p ~count) counts)
        rank_counts)
    grid

let fastest c =
  List.fold_left (fun best r -> if r.simulated < best.simulated then r else best)
    (List.hd c.results) c.results

let print cases =
  let header = [ "coll"; "p"; "count"; "algorithm"; "predicted"; "simulated"; "" ] in
  let rows =
    List.concat_map
      (fun c ->
        let best = fastest c in
        List.map
          (fun r ->
            let marks =
              (if r.algo = c.selected then "selected " else "")
              ^ (if r.algo = c.incumbent then "incumbent " else "")
              ^ if r.algo = best.algo then "fastest" else ""
            in
            [
              c.coll;
              string_of_int c.p;
              string_of_int c.count;
              r.algo;
              Table_fmt.seconds r.predicted;
              Table_fmt.seconds r.simulated;
              String.trim marks;
            ])
          c.results)
      cases
  in
  Table_fmt.print_table ~title:"Collective algorithm crossover (predicted vs simulated)" ~header
    rows;
  (* summary: does the cost model pick the empirically fastest variant, and
     what does tuning buy over the old hardcoded choice? *)
  let points = List.length cases in
  let hits = List.length (List.filter (fun c -> (fastest c).algo = c.selected) cases) in
  let improved =
    List.filter
      (fun c ->
        let sel = List.find (fun r -> r.algo = c.selected) c.results in
        let inc = List.find (fun r -> r.algo = c.incumbent) c.results in
        sel.simulated < inc.simulated *. 0.999)
      cases
  in
  Printf.printf "  selector picks the fastest simulated variant on %d/%d points\n" hits points;
  Printf.printf "  selector beats the pre-tuning hardcoded algorithm on %d/%d points\n%!"
    (List.length improved) points

let to_json cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"experiment\": \"collective_tuning\",\n  \"cases\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"coll\": %S, \"p\": %d, \"count\": %d, \"bytes\": %d, \"selected\": %S, \
            \"incumbent\": %S, \"fastest\": %S, \"results\": ["
           c.coll c.p c.count c.bytes c.selected c.incumbent (fastest c).algo);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"algo\": %S, \"predicted\": %.9e, \"simulated\": %.9e}" r.algo
               r.predicted r.simulated))
        c.results;
      Buffer.add_string b "]}")
    cases;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let run () = print (sweep ())
