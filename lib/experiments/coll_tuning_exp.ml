(* Collective-tuning sweep: predicted vs simulated crossover table.

   For each tuned collective and each (rank count, element count) point we
   pin every candidate algorithm in turn, run one call on the simulator,
   and take the slowest rank's completion time; next to it we put the LogGP
   prediction the selector used.  The selector's pick ("selected") can then
   be compared against both the incumbent (the algorithm the library
   hardcoded before tuning) and the empirically fastest variant. *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype
module Algo = Coll_algos.Algo
module Cost = Coll_algos.Cost
module Select = Coll_algos.Select

type algo_result = { algo : string; predicted : float; simulated : float }

type case = {
  coll : string;
  p : int;
  count : int;
  bytes : int;
  selected : string;
  incumbent : string;
  results : algo_result list;
}

let prm = Simnet.Netmodel.default
let op = Mpisim.Op.int_sum

(* Max completion time across ranks of one pinned collective call. *)
let simulate ~coll ~algo ~p ~count =
  let times =
    Mpisim.Mpi.run_exn ~ranks:p (fun raw ->
        C.pin_algorithm raw ~coll ~algo;
        let r = Mpisim.Comm.rank raw in
        let t0 = Mpisim.Comm.now raw in
        (match coll with
        | "bcast" ->
            let buf = Array.make count r in
            C.bcast raw D.int buf ~root:0
        | "allreduce" ->
            let sendbuf = Array.make count r and recvbuf = Array.make count 0 in
            C.allreduce raw D.int op ~sendbuf ~recvbuf ~count
        | "allgather" ->
            let sendbuf = Array.make count r and recvbuf = Array.make (p * count) 0 in
            C.allgather raw D.int ~sendbuf ~recvbuf ~count
        | "alltoall" ->
            let sendbuf = Array.make (p * count) r and recvbuf = Array.make (p * count) 0 in
            C.alltoall raw D.int ~sendbuf ~recvbuf ~count
        | _ -> invalid_arg coll);
        Mpisim.Comm.now raw -. t0)
  in
  Array.fold_left Float.max 0.0 times

(* Candidates, predictions and the selector's choice, per collective.  The
   selection call mirrors what the dispatcher does (same inputs, fresh
   table, no pins), so "selected" is exactly what an untuned run picks. *)
let describe ~coll ~p ~count =
  let bytes = D.bytes D.int count in
  let fresh = Select.create () in
  match coll with
  | "bcast" ->
      ( bytes,
        List.map
          (fun a -> (Algo.bcast_name a, Cost.bcast prm ~p ~bytes a))
          Algo.all_bcast,
        Algo.bcast_name (Select.bcast fresh ~cid:0 prm ~p ~bytes),
        Algo.bcast_name Bcast_binomial )
  | "allreduce" ->
      let op_cost = Mpisim.Op.cost_per_element op in
      ( bytes,
        List.map
          (fun a -> (Algo.allreduce_name a, Cost.allreduce prm ~p ~bytes ~elems:count ~op_cost a))
          Algo.all_allreduce,
        Algo.allreduce_name
          (Select.allreduce fresh ~cid:0 prm ~p ~bytes ~elems:count ~op_cost ~commutative:true),
        Algo.allreduce_name Ar_reduce_bcast )
  | "allgather" ->
      let feasible a = a <> Algo.Ag_recursive_doubling || p land (p - 1) = 0 in
      ( bytes,
        List.filter_map
          (fun a ->
            if feasible a then Some (Algo.allgather_name a, Cost.allgather prm ~p ~bytes a)
            else None)
          Algo.all_allgather,
        Algo.allgather_name (Select.allgather fresh ~cid:0 prm ~p ~bytes),
        Algo.allgather_name Ag_bruck )
  | "alltoall" ->
      ( bytes,
        List.map
          (fun a -> (Algo.alltoall_name a, Cost.alltoall prm ~p ~bytes a))
          Algo.all_alltoall,
        Algo.alltoall_name (Select.alltoall fresh ~cid:0 prm ~p ~bytes),
        Algo.alltoall_name A2a_pairwise )
  | _ -> invalid_arg coll

let sweep_point ~coll ~p ~count =
  let bytes, predictions, selected, incumbent = describe ~coll ~p ~count in
  (* hierarchical variants predict infinity on the flat fabric: not real
     candidates here, and "inf" is not JSON *)
  let predictions = List.filter (fun (_, c) -> c < infinity) predictions in
  let results =
    List.map
      (fun (algo, predicted) ->
        { algo; predicted; simulated = simulate ~coll ~algo ~p ~count })
      predictions
  in
  { coll; p; count; bytes; selected; incumbent; results }

let grid =
  [
    ("bcast", [ 1; 1024; 65536 ]);
    ("allreduce", [ 1; 1024; 65536 ]);
    ("allgather", [ 1; 512; 16384 ]);
    ("alltoall", [ 1; 256; 4096 ]);
  ]

let rank_counts = [ 4; 16 ]

let sweep () =
  List.concat_map
    (fun (coll, counts) ->
      List.concat_map
        (fun p -> List.map (fun count -> sweep_point ~coll ~p ~count) counts)
        rank_counts)
    grid

let fastest c =
  List.fold_left (fun best r -> if r.simulated < best.simulated then r else best)
    (List.hd c.results) c.results

let print cases =
  let header = [ "coll"; "p"; "count"; "algorithm"; "predicted"; "simulated"; "" ] in
  let rows =
    List.concat_map
      (fun c ->
        let best = fastest c in
        List.map
          (fun r ->
            let marks =
              (if r.algo = c.selected then "selected " else "")
              ^ (if r.algo = c.incumbent then "incumbent " else "")
              ^ if r.algo = best.algo then "fastest" else ""
            in
            [
              c.coll;
              string_of_int c.p;
              string_of_int c.count;
              r.algo;
              Table_fmt.seconds r.predicted;
              Table_fmt.seconds r.simulated;
              String.trim marks;
            ])
          c.results)
      cases
  in
  Table_fmt.print_table ~title:"Collective algorithm crossover (predicted vs simulated)" ~header
    rows;
  (* summary: does the cost model pick the empirically fastest variant, and
     what does tuning buy over the old hardcoded choice? *)
  let points = List.length cases in
  let hits = List.length (List.filter (fun c -> (fastest c).algo = c.selected) cases) in
  let improved =
    List.filter
      (fun c ->
        let sel = List.find (fun r -> r.algo = c.selected) c.results in
        let inc = List.find (fun r -> r.algo = c.incumbent) c.results in
        sel.simulated < inc.simulated *. 0.999)
      cases
  in
  Printf.printf "  selector picks the fastest simulated variant on %d/%d points\n" hits points;
  Printf.printf "  selector beats the pre-tuning hardcoded algorithm on %d/%d points\n%!"
    (List.length improved) points

(* ---------------- topology-aware sweep ---------------- *)

(* The acceptance fabric: a two-tier cluster of 48-rank shared-memory
   nodes (the paper machine's shape), four nodes' worth of ranks, under a
   scattered batch allocation — consecutive ranks rarely share a node, so
   topology-blind algorithms pay inter-node cost on almost every edge
   while the hierarchical variants recover the node structure from the
   placement map. *)
let hier_node_size = Topology.Presets.omnipath_node_size
let hier_ranks = 4 * hier_node_size
let hier_fabric () = Topology.Presets.omnipath_scattered ~ranks:hier_ranks

type hier_case = {
  hc_coll : string;
  hc_count : int;
  hc_bytes : int;
  hc_flat_algo : string;  (** the pre-topology cost-based choice *)
  hc_flat_time : float;
  hc_tuned_algo : string;  (** what the installed pin table dispatches *)
  hc_tuned_time : float;
  hc_predicted : string;  (** topology-aware cost-model winner *)
  hc_simulated : string;  (** empirically fastest pinned variant *)
  hc_results : algo_result list;
}

type hier_report = {
  hr_ranks : int;
  hr_node_size : int;
  hr_cases : hier_case list;
  hr_speedups : (string * float) list;  (** coll -> max flat/tuned *)
  hr_crossover_ok : bool;
  hr_table_ok : bool;  (** tuned dispatch = predicted winner everywhere *)
}

(* Max completion time across ranks of one collective call on the fabric,
   after [setup] (a pin, or an installed auto-tune table) ran on every
   rank. *)
let simulate_fabric ~fabric ~setup ~coll ~count =
  let p = hier_ranks in
  let res =
    Mpisim.Mpi.run ~fabric ~ranks:p (fun raw ->
        setup raw;
        let r = Mpisim.Comm.rank raw in
        let t0 = Mpisim.Comm.now raw in
        (match coll with
        | "bcast" ->
            let buf = Array.make count r in
            C.bcast raw D.int buf ~root:0
        | "allreduce" ->
            let sendbuf = Array.make count r and recvbuf = Array.make count 0 in
            C.allreduce raw D.int op ~sendbuf ~recvbuf ~count
        | "alltoall" ->
            let sendbuf = Array.make (p * count) r and recvbuf = Array.make (p * count) 0 in
            C.alltoall raw D.int ~sendbuf ~recvbuf ~count
        | _ -> invalid_arg coll);
        Mpisim.Comm.now raw -. t0)
  in
  Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)

(* Argmin over (algo, cost) in catalogue order, strict [<] so the
   incumbent keeps ties — the same rule as [Select]. *)
let arg_best predictions =
  List.fold_left
    (fun (ba, bc) (a, c) -> if c < bc then (a, c) else (ba, bc))
    (List.hd predictions) (List.tl predictions)

(* Last pin-table row whose threshold covers [bytes] (tables are anchored
   at 0, so this is total). *)
let table_algo table ~bytes =
  List.fold_left (fun acc (thr, a) -> if thr <= bytes then a else acc) (snd (List.hd table)) table

let hier_point ~fabric ~net ~group ~plan ~coll ~count =
  let bytes = D.bytes D.int count in
  let p = hier_ranks in
  let prm = Simnet.Netmodel.params_for_group net group in
  let hier = Simnet.Netmodel.hier_for_group net group in
  let op_cost = Mpisim.Op.cost_per_element op in
  let fresh = Select.create () in
  let predictions, flat_algo, table =
    match coll with
    | "bcast" ->
        ( Topology.Autotune.predict_bcast ?hier prm ~p ~bytes,
          Algo.bcast_name (Select.bcast fresh ~cid:0 prm ~p ~bytes),
          plan.Topology.Autotune.t_bcast )
    | "allreduce" ->
        ( Topology.Autotune.predict_allreduce ?hier ~op_cost prm ~p ~bytes,
          Algo.allreduce_name
            (Select.allreduce fresh ~cid:0 prm ~p ~bytes ~elems:count ~op_cost ~commutative:true),
          plan.Topology.Autotune.t_allreduce )
    | "alltoall" ->
        ( Topology.Autotune.predict_alltoall ?hier prm ~p ~bytes,
          Algo.alltoall_name (Select.alltoall fresh ~cid:0 prm ~p ~bytes),
          plan.Topology.Autotune.t_alltoall )
    | _ -> invalid_arg coll
  in
  let results =
    List.filter_map
      (fun (algo, predicted) ->
        if predicted = infinity then None
        else
          Some
            {
              algo;
              predicted;
              simulated =
                simulate_fabric ~fabric ~coll ~count ~setup:(fun raw ->
                    C.pin_algorithm raw ~coll ~algo);
            })
      predictions
  in
  let tuned_algo = table_algo table ~bytes in
  let tuned_time =
    simulate_fabric ~fabric ~coll ~count ~setup:(fun raw ->
        C.pin_table_algorithm raw ~coll table)
  in
  let flat_time = (List.find (fun r -> r.algo = flat_algo) results).simulated in
  let simulated =
    (List.fold_left (fun b r -> if r.simulated < b.simulated then r else b) (List.hd results)
       results)
      .algo
  in
  {
    hc_coll = coll;
    hc_count = count;
    hc_bytes = bytes;
    hc_flat_algo = flat_algo;
    hc_flat_time = flat_time;
    hc_tuned_algo = tuned_algo;
    hc_tuned_time = tuned_time;
    hc_predicted = fst (arg_best predictions);
    hc_simulated = simulated;
    hc_results = results;
  }

let hier_grid =
  [
    ("bcast", [ 1; 256; 4096; 65536 ]);
    ("allreduce", [ 1; 256; 4096; 65536 ]);
    ("alltoall", [ 1; 64; 1024 ]);
  ]

(* Predicted-vs-simulated crossover agreement, within one sweep step: at
   every sweep point the cost model's winner must be the simulated winner
   there or at an adjacent point (a switch one grid step early or late is
   fine — the grids are geometric), or at worst simulate within 5% of the
   best (near-ties are not a crossover disagreement). *)
let crossover_ok cases =
  let arr = Array.of_list cases in
  let sim i = arr.(i).hc_simulated in
  let ok i c =
    c.hc_predicted = sim i
    || (i > 0 && c.hc_predicted = sim (i - 1))
    || (i < Array.length arr - 1 && c.hc_predicted = sim (i + 1))
    ||
    let best = List.find (fun r -> r.algo = sim i) c.hc_results in
    match List.find_opt (fun r -> r.algo = c.hc_predicted) c.hc_results with
    | Some p -> p.simulated <= best.simulated *. 1.05
    | None -> false
  in
  Array.for_all Fun.id (Array.mapi ok arr)

let hier_sweep () =
  let fabric = hier_fabric () in
  let net = Simnet.Netmodel.create_fabric fabric ~ranks:hier_ranks in
  let group = Array.init hier_ranks Fun.id in
  let by_coll =
    List.map
      (fun (coll, counts) ->
        let sizes = List.map (fun c -> D.bytes D.int c) counts in
        let plan = Topology.Autotune.tune fabric ~p:hier_ranks ~sizes in
        (coll, List.map (fun count -> hier_point ~fabric ~net ~group ~plan ~coll ~count) counts))
      hier_grid
  in
  let speedup cases =
    List.fold_left (fun m c -> Float.max m (c.hc_flat_time /. c.hc_tuned_time)) 0.0 cases
  in
  let cases = List.concat_map snd by_coll in
  {
    hr_ranks = hier_ranks;
    hr_node_size = hier_node_size;
    hr_cases = cases;
    hr_speedups = List.map (fun (coll, cs) -> (coll, speedup cs)) by_coll;
    hr_crossover_ok = List.for_all (fun (_, cs) -> crossover_ok cs) by_coll;
    hr_table_ok = List.for_all (fun c -> c.hc_tuned_algo = c.hc_predicted) cases;
  }

let print_hier report =
  let header = [ "coll"; "count"; "algorithm"; "predicted"; "simulated"; "" ] in
  let rows =
    List.concat_map
      (fun c ->
        List.map
          (fun r ->
            let marks =
              (if r.algo = c.hc_tuned_algo then "tuned " else "")
              ^ (if r.algo = c.hc_flat_algo then "flat-default " else "")
              ^ if r.algo = c.hc_simulated then "fastest" else ""
            in
            [
              c.hc_coll;
              string_of_int c.hc_count;
              r.algo;
              Table_fmt.seconds r.predicted;
              Table_fmt.seconds r.simulated;
              String.trim marks;
            ])
          c.hc_results)
      report.hr_cases
  in
  Table_fmt.print_table
    ~title:
      (Printf.sprintf "Hierarchical collectives on a two-tier fabric (%d ranks, %d per node)"
         report.hr_ranks report.hr_node_size)
    ~header rows;
  List.iter
    (fun (coll, s) ->
      Printf.printf "  %-10s best auto-tuned speedup over the flat default: %.2fx\n" coll s)
    report.hr_speedups;
  Printf.printf "  predicted crossovers track simulated ones within one sweep step: %b\n"
    report.hr_crossover_ok;
  Printf.printf "  pin-table dispatch matches the predicted winner everywhere: %b\n%!"
    report.hr_table_ok

let speedup_of report coll = try List.assoc coll report.hr_speedups with Not_found -> 0.0

let to_json cases report =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"experiment\": \"collective_tuning\",\n  \"cases\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"coll\": %S, \"p\": %d, \"count\": %d, \"bytes\": %d, \"selected\": %S, \
            \"incumbent\": %S, \"fastest\": %S, \"results\": ["
           c.coll c.p c.count c.bytes c.selected c.incumbent (fastest c).algo);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"algo\": %S, \"predicted\": %.9e, \"simulated\": %.9e}" r.algo
               r.predicted r.simulated))
        c.results;
      Buffer.add_string b "]}")
    cases;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"topology\": {\n    \"ranks\": %d, \"node_size\": %d,\n    \"cases\": [\n"
       report.hr_ranks report.hr_node_size);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "      {\"coll\": %S, \"count\": %d, \"bytes\": %d, \"flat_algo\": %S, \
            \"flat_time\": %.9e, \"tuned_algo\": %S, \"tuned_time\": %.9e, \"speedup\": %.3f, \
            \"predicted\": %S, \"simulated\": %S, \"results\": ["
           c.hc_coll c.hc_count c.hc_bytes c.hc_flat_algo c.hc_flat_time c.hc_tuned_algo
           c.hc_tuned_time
           (c.hc_flat_time /. c.hc_tuned_time)
           c.hc_predicted c.hc_simulated);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"algo\": %S, \"predicted\": %.9e, \"simulated\": %.9e}" r.algo
               r.predicted r.simulated))
        c.hc_results;
      Buffer.add_string b "]}")
    report.hr_cases;
  Buffer.add_string b "\n    ],\n";
  Buffer.add_string b
    (Printf.sprintf "    \"speedups\": {%s}\n  },\n"
       (String.concat ", "
          (List.map (fun (coll, s) -> Printf.sprintf "%S: %.3f" coll s) report.hr_speedups)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"checks\": {\n\
       \    \"hier_bcast_speedup_ge_1_2\": %b,\n\
       \    \"hier_allreduce_speedup_ge_1_2\": %b,\n\
       \    \"crossovers_within_one_sweep_step\": %b,\n\
       \    \"tuned_dispatch_matches_prediction\": %b\n\
       \  }\n\
        }\n"
       (speedup_of report "bcast" >= 1.2)
       (speedup_of report "allreduce" >= 1.2)
       report.hr_crossover_ok report.hr_table_ok);
  Buffer.contents b

(* Self-validation, in the style of [Engine_exp.validate_json]: the file
   must round-trip through Serde.Json and every entry of its "checks"
   object must be [true]. *)
let validate_json ~path ~json =
  let module J = Serde.Json in
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) (J.parse json)) then
    failwith (Printf.sprintf "colltuning: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "colltuning: BENCH_collectives.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "colltuning: check %S failed" name))
    checks

let run () =
  print (sweep ());
  print_hier (hier_sweep ())
