(** Collective-tuning crossover sweep: for every tuned collective, run each
    candidate algorithm pinned, over a message-size x rank-count grid, and
    compare the LogGP cost-model predictions against the simulated times.
    The table shows where the crossovers sit and that the selector's choice
    tracks the fastest simulated variant. *)

(** One pinned variant's outcome for a sweep point. *)
type algo_result = {
  algo : string;
  predicted : float;  (** cost-model estimate, seconds *)
  simulated : float;  (** max simulated completion time across ranks *)
}

(** One (collective, rank count, element count) sweep point. *)
type case = {
  coll : string;
  p : int;
  count : int;  (** elements (per block for allgather/alltoall) *)
  bytes : int;  (** payload bytes the cost model sees *)
  selected : string;  (** the selector's cost-based choice *)
  incumbent : string;  (** the pre-tuning hardcoded algorithm *)
  results : algo_result list;
}

(** [sweep ()] runs the whole flat grid (deterministic). *)
val sweep : unit -> case list

(** [print cases] renders the crossover tables. *)
val print : case list -> unit

(** {1 Topology-aware sweep}

    The same exercise on the acceptance fabric — a two-tier cluster of
    48-rank shared-memory nodes — with the hierarchical candidates
    unlocked: every feasible variant is pinned and simulated, the
    [Topology.Autotune] pin table is installed and timed end-to-end, and
    both are compared against the flat (topology-blind) cost-based
    default. *)

(** One (collective, payload) point on the hierarchical fabric. *)
type hier_case = {
  hc_coll : string;
  hc_count : int;
  hc_bytes : int;
  hc_flat_algo : string;  (** the pre-topology cost-based choice *)
  hc_flat_time : float;
  hc_tuned_algo : string;  (** what the installed pin table dispatches *)
  hc_tuned_time : float;
  hc_predicted : string;  (** topology-aware cost-model winner *)
  hc_simulated : string;  (** empirically fastest pinned variant *)
  hc_results : algo_result list;
}

type hier_report = {
  hr_ranks : int;
  hr_node_size : int;
  hr_cases : hier_case list;
  hr_speedups : (string * float) list;
      (** per collective: best flat-default / auto-tuned time ratio *)
  hr_crossover_ok : bool;
      (** predicted crossovers track simulated ones within one sweep step *)
  hr_table_ok : bool;  (** pin-table dispatch = predicted winner everywhere *)
}

(** [hier_sweep ()] runs the fabric grid (deterministic). *)
val hier_sweep : unit -> hier_report

val print_hier : hier_report -> unit

(** [to_json cases report] is the machine-readable dump written to
    [BENCH_collectives.json]: the flat sweep, the topology sweep, and a
    ["checks"] object of gate booleans (hierarchical speedup >= 1.2x on
    bcast and allreduce, crossover agreement, table consistency). *)
val to_json : case list -> hier_report -> string

(** [validate_json ~path ~json] re-reads the written file, requires it to
    round-trip through [Serde.Json], and fails if any ["checks"] entry is
    not [true]. *)
val validate_json : path:string -> json:string -> unit

val run : unit -> unit
