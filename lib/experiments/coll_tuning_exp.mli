(** Collective-tuning crossover sweep: for every tuned collective, run each
    candidate algorithm pinned, over a message-size x rank-count grid, and
    compare the LogGP cost-model predictions against the simulated times.
    The table shows where the crossovers sit and that the selector's choice
    tracks the fastest simulated variant. *)

(** One pinned variant's outcome for a sweep point. *)
type algo_result = {
  algo : string;
  predicted : float;  (** cost-model estimate, seconds *)
  simulated : float;  (** max simulated completion time across ranks *)
}

(** One (collective, rank count, element count) sweep point. *)
type case = {
  coll : string;
  p : int;
  count : int;  (** elements (per block for allgather/alltoall) *)
  bytes : int;  (** payload bytes the cost model sees *)
  selected : string;  (** the selector's cost-based choice *)
  incumbent : string;  (** the pre-tuning hardcoded algorithm *)
  results : algo_result list;
}

(** [sweep ()] runs the whole grid (deterministic). *)
val sweep : unit -> case list

(** [print cases] renders the crossover tables. *)
val print : case list -> unit

(** [to_json cases] is a machine-readable dump of the sweep, one object per
    case (consumed by the bench harness's [BENCH_collectives.json]). *)
val to_json : case list -> string

val run : unit -> unit
