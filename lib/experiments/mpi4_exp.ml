(* The MPI-4 surface benchmark (BENCH_mpi4.json): three self-validated
   gates over the persistent/partitioned layer.

   1. {b Persistent serving} — the sharded request-serving engine with
      both aggregators on persistent channels versus the ephemeral
      transport, under a network whose per-call software setup cost
      ([Netmodel.setup_overhead]) is explicit.  Persistent channels pay
      that cost once at [*_init]; the ephemeral path pays it per
      send/recv.  Gate: >= 1.15x throughput, with both final stores
      bit-identical to the host oracle.

   2. {b Profiling equality} — persistent handles that are created but
      never started must be invisible: zero extra messages, bytes,
      simulated time or events, and the only new profiled calls are the
      [*_init] registrations themselves (MPI_Start/Wait are charged per
      round, never at rest).

   3. {b Transport equivalence} — the persistent_halo gallery example's
      persistent and ephemeral variants must produce bit-identical
      digests, on the incumbent schedule and across 20 random
      schedules. *)

module J = Serde.Json
module D = Mpisim.Datatype
module P = Mpisim.P2p
module Prof = Mpisim.Profiling

let ranks = 6

(* ---------------- gate 1: persistent serving ---------------- *)

(* 2 us of per-call software setup: the regime real persistent requests
   target (match-once, send-many).  The serving engine's throughput is
   overhead-bound at the Zipf head, so cutting per-block setup shows up
   directly in sim_time. *)
let serving_net = { Simnet.Netmodel.default with Simnet.Netmodel.setup_overhead = 2.0e-6 }

let serving_cfg = { Serve.default with Serve.batch_threshold = 8 }

type serving_row = { persistent : bool; r : Serve.report; digest_ok : bool }

let serving_run ~persistent =
  let cfg = { serving_cfg with Serve.persistent } in
  let r = Serve.run ~net:serving_net ~ranks cfg in
  { persistent; r; digest_ok = r.Serve.store_digest = Serve.expected_store_digest cfg }

(* ---------------- gate 2: idle handles are free ---------------- *)

(* A fixed ring workload, optionally decorated with persistent handles
   that are created, left idle, and freed.  The decorated run must be
   indistinguishable except for the *_init registrations. *)
let ring_workload ~idle comm =
  let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
  let right = (r + 1) mod p and left = (r + p - 1) mod p in
  let idle_handles =
    if not idle then []
    else
      [
        P.send_init comm D.int [| 0 |] ~dst:right ~tag:5;
        P.recv_init comm D.int [| 0 |] ~src:left ~tag:5;
        Mpisim.Collectives.bcast_init comm D.int [| 0 |] ~root:0;
      ]
  in
  let buf = [| r |] in
  for _ = 1 to 8 do
    P.send comm D.int [| r |] ~dst:right ~tag:1;
    ignore (P.recv comm D.int buf ~src:left ~tag:1)
  done;
  List.iter Mpisim.Persist.free idle_handles;
  buf.(0)

type idle_cmp = {
  extra_calls : (string * int) list;
  extra_algo : (string * int) list;
  extra_messages : int;
  extra_bytes : int;
  time_equal : bool;
  events_equal : bool;
  only_inits : bool;
}

let idle_compare () =
  let base = Mpisim.Mpi.run ~ranks (ring_workload ~idle:false) in
  let idle = Mpisim.Mpi.run ~ranks (ring_workload ~idle:true) in
  Array.iter (function Error e -> raise e | Ok _ -> ()) base.Mpisim.Mpi.results;
  Array.iter (function Error e -> raise e | Ok _ -> ()) idle.Mpisim.Mpi.results;
  let d = Prof.diff ~before:base.Mpisim.Mpi.profile ~after:idle.Mpisim.Mpi.profile in
  let is_init (name, _) =
    let suffix = "_init" in
    String.length name >= String.length suffix
    && String.sub name (String.length name - String.length suffix) (String.length suffix)
       = suffix
  in
  {
    extra_calls = d.Prof.calls;
    extra_algo = d.Prof.algo_calls;
    extra_messages = d.Prof.messages;
    extra_bytes = d.Prof.bytes;
    time_equal = base.Mpisim.Mpi.sim_time = idle.Mpisim.Mpi.sim_time;
    events_equal = base.Mpisim.Mpi.events = idle.Mpisim.Mpi.events;
    only_inits =
      d.Prof.calls <> [] && List.for_all is_init d.Prof.calls
      && List.fold_left (fun acc (_, n) -> acc + n) 0 d.Prof.calls = 3 * ranks;
  }

(* ---------------- gate 3: transport equivalence ---------------- *)

let schedules = 20

let halo_digests () =
  (* [digest] itself runs both transports and fails on divergence, so one
     call per schedule covers persistent-vs-ephemeral equality; comparing
     across schedules covers schedule independence. *)
  let reference = Explore.unexplored (fun () -> Gallery.Persistent_halo.digest ()) in
  let divergent = ref 0 in
  for i = 1 to schedules do
    let got, _token =
      Explore.with_strategy
        ~strategy:(Explore.Random { seed = 40400 + i })
        (fun () -> Gallery.Persistent_halo.digest ())
    in
    if got <> reference then incr divergent
  done;
  (reference, !divergent)

(* ---------------- self-validation ---------------- *)

let validate_json ~path ~json =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (J.equal (J.parse text) json) then
    failwith (Printf.sprintf "mpi4: %s did not round-trip through Serde.Json" path);
  let checks =
    match J.member "checks" (J.parse text) with
    | Some (J.Obj kvs) -> kvs
    | _ -> failwith "mpi4: BENCH_mpi4.json lacks a checks object"
  in
  List.iter
    (fun (name, v) ->
      if v <> J.Bool true then failwith (Printf.sprintf "mpi4: check %S failed" name))
    checks

let run () =
  Printf.printf "MPI-4 surface: persistent channels, partitioned transfer, idle-handle cost\n\n";

  (* gate 1 *)
  let eph = serving_run ~persistent:false in
  let pers = serving_run ~persistent:true in
  let speedup = pers.r.Serve.throughput /. eph.r.Serve.throughput in
  Table_fmt.print_table ~title:"serving transport (setup overhead 2 us/call)"
    ~header:[ "transport"; "tput req/s"; "p99"; "sim time"; "exact" ]
    (List.map
       (fun { persistent; r; digest_ok } ->
         [
           (if persistent then "persistent" else "ephemeral");
           Printf.sprintf "%.3g" r.Serve.throughput;
           Printf.sprintf "%.1f us" (1e6 *. r.Serve.p99);
           Table_fmt.seconds r.Serve.sim_time;
           (if digest_ok then "yes" else "NO");
         ])
       [ eph; pers ]);
  Printf.printf "  persistent-channel speedup: %.2fx\n\n" speedup;

  (* gate 2 *)
  let idle = idle_compare () in
  Printf.printf "idle persistent handles (per %d ranks: send_init + recv_init + bcast_init):\n"
    ranks;
  Printf.printf "  extra profiled calls: %s\n"
    (String.concat ", "
       (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) idle.extra_calls));
  Printf.printf "  extra messages/bytes: %d/%d, sim time equal: %b, events equal: %b\n\n"
    idle.extra_messages idle.extra_bytes idle.time_equal idle.events_equal;

  (* gate 3 *)
  let reference, divergent = halo_digests () in
  Printf.printf
    "persistent vs ephemeral halo: digests bit-identical on %d/%d random schedules\n\n"
    (schedules - divergent) schedules;

  let serving_ok = speedup >= 1.15 && eph.digest_ok && pers.digest_ok in
  let idle_ok =
    idle.only_inits && idle.extra_messages = 0 && idle.extra_bytes = 0 && idle.time_equal
    && idle.events_equal
    (* algorithm selection happens once at bcast_init and is recorded
       there; nothing else may show up in the algorithm category *)
    && List.for_all
         (fun (n, _) -> String.length n >= 8 && String.sub n 0 8 = "MPI_Bcas")
         idle.extra_algo
  in
  let halo_ok = divergent = 0 in
  Printf.printf "  persistent serving >= 1.15x + exact stores: %b\n" serving_ok;
  Printf.printf "  idle handles profile-invisible:             %b\n" idle_ok;
  Printf.printf "  transports bit-identical over %2d schedules: %b\n" schedules halo_ok;

  let json_of_report (r : Serve.report) =
    J.Obj
      [
        ("completed", J.Num (float_of_int r.Serve.completed));
        ("throughput_rps", J.Num r.Serve.throughput);
        ("p99_s", J.Num r.Serve.p99);
        ("sim_time_s", J.Num r.Serve.sim_time);
      ]
  in
  let json =
    J.Obj
      [
        ( "config",
          J.Obj
            [
              ("ranks", J.Num (float_of_int ranks));
              ("setup_overhead_s", J.Num serving_net.Simnet.Netmodel.setup_overhead);
              ("batch_threshold", J.Num (float_of_int serving_cfg.Serve.batch_threshold));
              ("schedules", J.Num (float_of_int schedules));
            ] );
        ( "serving",
          J.Obj
            [
              ("ephemeral", json_of_report eph.r);
              ("persistent", json_of_report pers.r);
              ("speedup", J.Num speedup);
              ("digests_ok", J.Bool (eph.digest_ok && pers.digest_ok));
            ] );
        ( "idle_handles",
          J.Obj
            [
              ( "extra_calls",
                J.Obj
                  (List.map (fun (n, c) -> (n, J.Num (float_of_int c))) idle.extra_calls) );
              ("extra_messages", J.Num (float_of_int idle.extra_messages));
              ("extra_bytes", J.Num (float_of_int idle.extra_bytes));
              ("sim_time_equal", J.Bool idle.time_equal);
              ("events_equal", J.Bool idle.events_equal);
            ] );
        ( "halo",
          J.Obj
            [
              ("digest", J.Str reference);
              ("schedules", J.Num (float_of_int schedules));
              ("divergent", J.Num (float_of_int divergent));
            ] );
        ( "checks",
          J.Obj
            [
              ("persistent_serving_speedup_over_15_percent", J.Bool serving_ok);
              ("idle_handles_profile_invisible", J.Bool idle_ok);
              ("transports_bit_identical_across_schedules", J.Bool halo_ok);
            ] );
      ]
  in
  let path = "BENCH_mpi4.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  close_out oc;
  validate_json ~path ~json;
  Printf.printf "  wrote %s (all checks passed)\n%!" path
