(** The [explore] experiment: overhead smoke for the schedule-exploration
    harness (lib/explore).

    Runs the same sample-sort workload repeatedly with exploration off,
    under the [Default] strategy (decision hooks installed but answering
    0 everywhere) and under [Random] exploration, and reports the host
    wall-clock per run alongside the simulated time and event count.

    The results are written to [BENCH_explore.json] and self-validated:
    the experiment exits non-zero unless (a) the [Default] strategy is a
    pure observer — simulated time, event count and MPI-call profile are
    bit-identical to the exploration-off run — and (b) every random
    schedule produces the reference result digest (the workload is
    schedule-independent). *)

val run : unit -> unit
