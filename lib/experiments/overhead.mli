(** Sec. III-H / IV-A: the (near) zero-overhead claim — PMPI call profiles
    and end-to-end sample-sort timing. *)

type timing = { variant : string; seconds : float }

(** [call_profiles ()] is the PMPI table of Sec. III-H: one row
    [[name; calls; messages]] per implementation variant of the allgatherv
    example (hand-rolled, KaMPIng defaults, KaMPIng fully parameterized).
    The checker regression sweep re-asserts the call equality under the
    strictest checking level. *)
val call_profiles : unit -> string list list

val sort_timings : ?ranks:int -> ?n_per_rank:int -> unit -> timing list
val run : unit -> unit
