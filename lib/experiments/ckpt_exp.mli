(** The [ckpt] experiment: checkpoint-interval × failure-rate sweep over
    the restartable label-propagation app (lib/ckpt), plus recovered-vs-
    reference bit-identity checks for both restartable apps.

    For every injected failure rate the sweep runs the Daly-scheduled
    policy against fixed intervals bracketing it (1/4x to 4x), an
    every-iteration policy and a no-checkpoint baseline, all under the
    same deterministic time-based failure schedule.  The table reports
    completion time, checkpoints taken and recovery rounds; every run's
    output is compared bit for bit against the failure-free reference.

    The results are written to [BENCH_ckpt.json] and self-validated:
    the experiment exits non-zero unless (a) every run — BFS and label
    propagation, with and without failures — is bit-identical to its
    reference, (b) the Daly interval achieves the minimal completion
    time of its sweep column, and (c) checkpoint overhead at the Daly
    interval is below 10% of the failure-free runtime. *)

val run : unit -> unit
