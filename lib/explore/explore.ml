module Engine = Simnet.Engine
module Rng = Simnet.Rng
module Checker = Mpisim.Checker

(* ------------------------------------------------------------------ *)
(* Strategies and chaos configuration                                  *)

type strategy =
  | Default
  | Random of { seed : int }
  | Pct of { seed : int; depth : int }
  | Delay of { seed : int; budget : int }

type chaos = {
  jitter : float;  (* max extra delivery latency, seconds; 0 = off *)
  jitter_buckets : int;  (* granularity of each jitter draw *)
  kills : (int * float * float) list;  (* (world rank, window lo, window hi) *)
  kill_buckets : int;  (* granularity of each kill-time draw *)
}

let no_chaos = { jitter = 0.0; jitter_buckets = 8; kills = []; kill_buckets = 16 }

(* ------------------------------------------------------------------ *)
(* Replay tokens                                                       *)

type token = { strategy : strategy; chaos : chaos; trace : int array }

let strategy_to_string = function
  | Default -> "default"
  | Random { seed } -> Printf.sprintf "random:%d" seed
  | Pct { seed; depth } -> Printf.sprintf "pct:%d:%d" seed depth
  | Delay { seed; budget } -> Printf.sprintf "delay:%d:%d" seed budget

let strategy_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "default" ] -> Default
  | [ "random"; seed ] -> Random { seed = int_of_string seed }
  | [ "random" ] -> Random { seed = 42 }
  | [ "pct"; seed; depth ] -> Pct { seed = int_of_string seed; depth = int_of_string depth }
  | [ "pct"; seed ] -> Pct { seed = int_of_string seed; depth = 3 }
  | [ "delay"; seed; budget ] ->
      Delay { seed = int_of_string seed; budget = int_of_string budget }
  | [ "delay"; seed ] -> Delay { seed = int_of_string seed; budget = 16 }
  | _ -> failwith (Printf.sprintf "Explore: cannot parse strategy %S" s)

let chop ~prefix s =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

(* Split "lo..hi" at the first ".." (hex floats contain single dots only). *)
let split_dotdot s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '.' && s.[i + 1] = '.' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
  | None -> None

(* Floats are printed in hex (%h) so the round-trip is bit-exact. *)
let token_to_string t =
  let kills =
    t.chaos.kills
    |> List.map (fun (r, lo, hi) -> Printf.sprintf "%d@%h..%h" r lo hi)
    |> String.concat ","
  in
  let trace = t.trace |> Array.to_list |> List.map string_of_int |> String.concat "," in
  Printf.sprintf "explore{%s|jitter=%h/%d|kills=%s/%d|trace=%s}"
    (strategy_to_string t.strategy)
    t.chaos.jitter t.chaos.jitter_buckets kills t.chaos.kill_buckets trace

let token_of_string s =
  let s = String.trim s in
  let fail () = failwith (Printf.sprintf "Explore: cannot parse token %S" s) in
  let get = function Some v -> v | None -> fail () in
  let body =
    match chop ~prefix:"explore{" s with
    | Some b when String.length b > 0 && b.[String.length b - 1] = '}' ->
        String.sub b 0 (String.length b - 1)
    | _ -> fail ()
  in
  match String.split_on_char '|' body with
  | [ strat; jitter; kills; trace ] ->
      let strategy = strategy_of_string strat in
      let jitter_v, jitter_buckets =
        match String.split_on_char '/' (get (chop ~prefix:"jitter=" jitter)) with
        | [ j; b ] -> (float_of_string j, int_of_string b)
        | _ -> fail ()
      in
      let kill_list, kill_buckets =
        match String.split_on_char '/' (get (chop ~prefix:"kills=" kills)) with
        | [ k; b ] ->
            let parse_kill one =
              match String.index_opt one '@' with
              | None -> fail ()
              | Some at -> (
                  let rank = int_of_string (String.sub one 0 at) in
                  let range = String.sub one (at + 1) (String.length one - at - 1) in
                  match split_dotdot range with
                  | Some (lo, hi) -> (rank, float_of_string lo, float_of_string hi)
                  | None -> fail ())
            in
            ( (if k = "" then [] else List.map parse_kill (String.split_on_char ',' k)),
              int_of_string b )
        | _ -> fail ()
      in
      let trace =
        match get (chop ~prefix:"trace=" trace) with
        | "" -> [||]
        | t -> t |> String.split_on_char ',' |> List.map int_of_string |> Array.of_list
      in
      {
        strategy;
        chaos = { jitter = jitter_v; jitter_buckets; kills = kill_list; kill_buckets };
        trace;
      }
  | _ -> fail ()

(* ------------------------------------------------------------------ *)
(* Decision sessions                                                   *)

(* Cap on recorded decisions: a pathological run stops growing its token
   past this point (replay pads with 0 beyond the end anyway). *)
let trace_cap = 1 lsl 20

type session = {
  hooks : Mpisim.Exhook.t;
  fail_at : (int * float) list;  (* chaos kills resolved at session start *)
  trace_of : unit -> int array;  (* decisions so far, trailing zeros trimmed *)
}

let make_session ?(record = true) ~strategy ~chaos ~replay () =
  let recorded = Ds.Vec.create () in
  let note i = if record && Ds.Vec.length recorded < trace_cap then Ds.Vec.push recorded i in
  let decide : kind:Engine.decision_kind -> ids:int array -> int =
    match replay with
    | Some tr ->
        let pos = ref 0 in
        fun ~kind:_ ~ids ->
          let n = Array.length ids in
          let raw = if !pos < Array.length tr then tr.(!pos) else 0 in
          incr pos;
          let i = if raw < 0 || raw >= n then 0 else raw in
          note i;
          i
    | None -> (
        match strategy with
        | Default ->
            fun ~kind:_ ~ids:_ ->
              note 0;
              0
        | Random { seed } ->
            let rng = Rng.create (Int64.of_int seed) in
            fun ~kind:_ ~ids ->
              let i = Rng.int rng (Array.length ids) in
              note i;
              i
        | Pct { seed; depth } ->
            let rng = Rng.create (Int64.of_int seed) in
            let prio : (int, float) Hashtbl.t = Hashtbl.create 16 in
            let prio_of id =
              match Hashtbl.find_opt prio id with
              | Some p -> p
              | None ->
                  let p = 1.0 +. Rng.float rng in
                  Hashtbl.replace prio id p;
                  p
            in
            fun ~kind ~ids ->
              let i =
                match kind with
                | Engine.Ready ->
                    (* highest-priority owner runs; with probability
                       depth/1000 per decision the winner is demoted below
                       every initial priority — the PCT priority-change
                       points, in expectation [depth] per 1000 decisions *)
                    let best = ref 0 and bestp = ref neg_infinity in
                    Array.iteri
                      (fun i id ->
                        let p = prio_of id in
                        if p > !bestp then begin
                          best := i;
                          bestp := p
                        end)
                      ids;
                    if depth > 0 && Rng.int rng 1000 < depth then
                      Hashtbl.replace prio ids.(!best) (Rng.float rng);
                    !best
                | _ -> Rng.int rng (Array.length ids)
              in
              note i;
              i
        | Delay { seed; budget } ->
            let rng = Rng.create (Int64.of_int seed) in
            let left = ref budget in
            fun ~kind:_ ~ids ->
              let n = Array.length ids in
              let i =
                if n > 1 && !left > 0 && Rng.bool rng then begin
                  decr left;
                  (* delay the incumbent next event: run some other one *)
                  1 + Rng.int rng (n - 1)
                end
                else 0
              in
              note i;
              i)
  in
  (* Chaos kills: one bucketed draw per kill window, consumed before the
     run starts so they sit at the head of the decision trace. *)
  let fail_at =
    List.map
      (fun (rank, lo, hi) ->
        let buckets = max 1 chaos.kill_buckets in
        let ids = Array.init buckets Fun.id in
        let b = if buckets = 1 then 0 else decide ~kind:Engine.Chaos ~ids in
        let frac = if buckets <= 1 then 0.0 else float_of_int b /. float_of_int (buckets - 1) in
        (rank, lo +. ((hi -. lo) *. frac)))
      chaos.kills
  in
  let arrival_adjust =
    if chaos.jitter <= 0.0 then None
    else begin
      let buckets = max 2 chaos.jitter_buckets in
      let ids = Array.init buckets Fun.id in
      let last : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
      Some
        (fun ~src ~dst ~arrival ->
          let b = decide ~kind:Engine.Chaos ~ids in
          let extra = chaos.jitter *. float_of_int b /. float_of_int (buckets - 1) in
          let a = arrival +. extra in
          (* preserve per-(src,dst) FIFO: never deliver at or before the
             pair's previous delivery *)
          let a =
            match Hashtbl.find_opt last (src, dst) with
            | Some l when a <= l -> Float.succ l
            | _ -> a
          in
          Hashtbl.replace last (src, dst) a;
          a)
    end
  in
  let trace_of () =
    let arr = Ds.Vec.to_array recorded in
    let len = ref (Array.length arr) in
    while !len > 0 && arr.(!len - 1) = 0 do
      decr len
    done;
    Array.sub arr 0 !len
  in
  { hooks = { Mpisim.Exhook.choose = (fun ~kind ~ids -> decide ~kind ~ids); arrival_adjust };
    fail_at;
    trace_of }

(* ------------------------------------------------------------------ *)
(* Running a workload under one schedule                               *)

type 'a outcome = Finished of 'a Mpisim.Mpi.run_result | Crashed of exn
type 'a observed = { outcome : 'a outcome; token : token }

(* Generous simulated-time watchdog: every explored run is bounded, so a
   livelocking schedule surfaces as Engine.Limit_exceeded instead of
   wedging the harness. *)
let default_deadline = 3600.0

let last_token_ref : token option ref = ref None
let last_token () = !last_token_ref

let run ?(strategy = Default) ?(chaos = no_chaos) ?replay ?net
    ?(check = Checker.Communication) ?(deadline = default_deadline) ~ranks f =
  let s = make_session ~strategy ~chaos ~replay () in
  let outcome =
    Checker.with_level check (fun () ->
        match
          Mpisim.Mpi.run ?net ~hooks:s.hooks ~fail_at:s.fail_at ~deadline ~ranks f
        with
        | r -> Finished r
        | exception e -> Crashed e)
  in
  let token = { strategy; chaos; trace = s.trace_of () } in
  last_token_ref := Some token;
  { outcome; token }

let replay ?net ?check ?deadline token ~ranks f =
  run ~strategy:token.strategy ~chaos:token.chaos ~replay:token.trace ?net ?check
    ?deadline ~ranks f

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

type verdict = Pass of string | Fail of string

let digest_results results =
  (* Marshal the per-rank values; a workload returning unmarshalable data
     (closures) still explores, it just can only be checked for
     pass/fail rather than cross-schedule result equality. *)
  match Marshal.to_string (results : Obj.t array) [] with
  | s -> Digest.to_hex (Digest.string s)
  | exception _ -> "<opaque>"

let verdict_of (o : 'a observed) =
  match o.outcome with
  | Crashed e -> Fail ("crashed: " ^ Printexc.to_string e)
  | Finished r ->
      if r.Mpisim.Mpi.diagnostics <> [] then
        Fail
          ("checker: "
          ^ String.concat "; " (List.map Checker.to_string r.Mpisim.Mpi.diagnostics))
      else begin
        let errs =
          Array.to_list r.Mpisim.Mpi.results
          |> List.filter_map (function
               | Error e -> Some (Printexc.to_string e)
               | Ok _ -> None)
        in
        if errs <> [] then Fail ("rank error: " ^ String.concat "; " errs)
        else
          Pass
            (digest_results
               (Array.map
                  (function Ok v -> Obj.repr v | Error _ -> assert false)
                  r.Mpisim.Mpi.results))
      end

(* ------------------------------------------------------------------ *)
(* Greedy trace shrinking                                              *)

(* ddmin-lite on the positional decision trace: try zeroing aligned chunks
   (halving the chunk size down to single decisions), keeping a candidate
   whenever the failure persists, then trim trailing zeros (replay pads
   with 0 beyond the end of the trace).  Deleting entries would shift the
   positions of every later decision and change their meaning, so zeroing
   is the only sound reduction. *)
let shrink_trace ?(budget = 300) ~fails trace =
  let attempts = ref 0 in
  let try_candidate cand =
    !attempts < budget
    && begin
         incr attempts;
         fails cand
       end
  in
  let cur = ref (Array.copy trace) in
  let size = ref (max 1 (Array.length trace / 2)) in
  let continue = ref (Array.length trace > 0) in
  while !continue do
    let i = ref 0 in
    while !i < Array.length !cur do
      let hi = min (Array.length !cur) (!i + !size) in
      let has_nonzero = ref false in
      for j = !i to hi - 1 do
        if (!cur).(j) <> 0 then has_nonzero := true
      done;
      if !has_nonzero then begin
        let cand = Array.copy !cur in
        for j = !i to hi - 1 do
          cand.(j) <- 0
        done;
        if try_candidate cand then cur := cand
      end;
      i := hi
    done;
    if !size = 1 || !attempts >= budget then continue := false else size := !size / 2
  done;
  let len = ref (Array.length !cur) in
  while !len > 0 && (!cur).(!len - 1) = 0 do
    decr len
  done;
  Array.sub !cur 0 !len

(* ------------------------------------------------------------------ *)
(* The exploration driver                                              *)

type counterexample = {
  ce_token : token;
  ce_reason : string;
  ce_schedule : int;  (* 0 = the reference schedule, i = i-th random one *)
  ce_decisions : int;  (* length of the minimized decision trace *)
  ce_chrome : string option;  (* path of the dumped Chrome trace, if any *)
}

let dump_chrome ?net ?(check = Checker.Communication) token ~ranks f =
  let s = make_session ~strategy:token.strategy ~chaos:token.chaos ~replay:(Some token.trace) () in
  match
    Checker.with_level check (fun () ->
        Mpisim.Mpi.run ?net ~hooks:s.hooks ~fail_at:s.fail_at ~deadline:default_deadline
          ~trace:true ~ranks f)
  with
  | exception _ -> None
  | r -> (
      match r.Mpisim.Mpi.trace with
      | None -> None
      | Some data ->
          let json = Trace.Chrome.to_json data in
          let path = Filename.temp_file "explore-counterexample" ".trace.json" in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Serde.Json.to_string json));
          Some path)

let explore ?(schedules = 20) ?(seed = 7) ?(chaos = no_chaos) ?net ?check
    ?(deadline = default_deadline) ?(verdict = verdict_of) ?(dump = true) ~ranks f =
  let reference = run ~strategy:Default ~chaos:no_chaos ?net ?check ~deadline ~ranks f in
  match verdict reference with
  | Fail reason ->
      Error
        {
          ce_token = reference.token;
          ce_reason = "reference schedule: " ^ reason;
          ce_schedule = 0;
          ce_decisions = Array.length reference.token.trace;
          ce_chrome = None;
        }
  | Pass ref_digest -> (
      let failing = ref None in
      let i = ref 0 in
      while !failing = None && !i < schedules do
        incr i;
        (* decorrelate per-schedule seeds from nearby base seeds *)
        let sd =
          Int64.to_int (Rng.hash64 (Int64.of_int ((seed * 1_000_003) + !i))) land 0x3FFFFFFF
        in
        let o = run ~strategy:(Random { seed = sd }) ~chaos ?net ?check ~deadline ~ranks f in
        match verdict o with
        | Fail reason -> failing := Some (o.token, reason, !i)
        | Pass d when d <> ref_digest ->
            failing :=
              Some
                ( o.token,
                  Printf.sprintf "schedule-dependent result: digest %s <> reference %s" d
                    ref_digest,
                  !i )
        | Pass _ -> ()
      done;
      match !failing with
      | None -> Ok schedules
      | Some (tok, reason, at) ->
          let fails tr =
            let o =
              run ~strategy:tok.strategy ~chaos:tok.chaos ~replay:tr ?net ?check ~deadline
                ~ranks f
            in
            match verdict o with Fail _ -> true | Pass d -> d <> ref_digest
          in
          let minimized = shrink_trace ~fails tok.trace in
          let ce_token = { tok with trace = minimized } in
          let ce_chrome = if dump then dump_chrome ?net ?check ce_token ~ranks f else None in
          Error
            {
              ce_token;
              ce_reason = reason;
              ce_schedule = at;
              ce_decisions = Array.length minimized;
              ce_chrome;
            })

(* ------------------------------------------------------------------ *)
(* Factory scoping: exploring code that calls Mpi.run itself           *)

let with_factory factory f =
  let old = !Mpisim.Exhook.factory in
  Mpisim.Exhook.factory := factory;
  Fun.protect ~finally:(fun () -> Mpisim.Exhook.factory := old) f

let with_strategy ~strategy ?(chaos = no_chaos) ?replay f =
  if chaos.kills <> [] then
    invalid_arg "Explore.with_strategy: chaos kills need Explore.run (fail_at plumbing)";
  let s = make_session ~strategy ~chaos ~replay () in
  let v = with_factory (fun () -> Some s.hooks) f in
  (v, { strategy; chaos; trace = s.trace_of () })

let unexplored f = with_factory (fun () -> None) f

(* ------------------------------------------------------------------ *)
(* Environment activation: MPISIM_EXPLORE=random:42 dune runtest       *)

let env_var = "MPISIM_EXPLORE"

let () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
      let strategy = strategy_of_string spec in
      (* Every Mpi.run gets a fresh session with the SAME seed and no
         recording: paired runs inside one test (e.g. profile-equality
         comparisons) still see identical schedules, and nothing
         accumulates across a long test binary. *)
      Mpisim.Exhook.factory :=
        fun () ->
          let s = make_session ~record:false ~strategy ~chaos:no_chaos ~replay:None () in
          Some s.hooks
