(** Schedule exploration and chaos testing for the simulated MPI runtime.

    Every run of the simulator is deterministic, but many of its decisions
    are {e don't-cares} under MPI semantics: the order in which same-time
    events fire, which source a wildcard receive matches, which of several
    complete requests a wait-any observes.  This subsystem drives
    {!Simnet.Engine} through pluggable strategies that systematically vary
    exactly those decisions — and nothing else — so schedule-dependent
    bugs (wildcard races, completion-order assumptions, recovery
    interleavings) surface in tests instead of production.

    Every explored run executes under the {!Mpisim.Checker} and captures a
    compact {e replay token} (strategy + chaos config + decision trace).
    On failure, a greedy shrinker minimizes the decision trace and the
    counterexample can be replayed exactly or dumped as a Chrome trace for
    postmortem.

    Activation for a whole test binary:
    [MPISIM_EXPLORE=random:42 dune runtest]. *)

(** {1 Strategies} *)

type strategy =
  | Default
      (** bit-identical to the incumbent schedule: every decision answers
          0 — a pure observer that exercises the exploration machinery *)
  | Random of { seed : int }
      (** uniformly random pick at every decision point (same-time ready
          sets, wildcard matching, completion order, chaos draws) *)
  | Pct of { seed : int; depth : int }
      (** probabilistic concurrency testing: random per-owner priorities;
          the highest-priority ready owner runs; with probability
          [depth/1000] per decision the winner is demoted below everyone,
          giving [depth] priority-change points per 1000 decisions in
          expectation *)
  | Delay of { seed : int; budget : int }
      (** incumbent schedule with up to [budget] injected delays: at a
          chosen decision point the next event is postponed behind a
          random other ready event *)

(** {1 Chaos layer}

    Composable with any strategy: latency jitter perturbs message arrival
    times (per-pair FIFO order is preserved), kills inject deterministic
    [?fail_at]-style process failures at a bucketed random point inside
    each given window.  Both consume decisions from the same recorded
    trace, so chaotic runs replay and shrink like any other. *)

type chaos = {
  jitter : float;  (** max extra delivery latency in seconds; [0.] = off *)
  jitter_buckets : int;  (** granularity of each jitter draw *)
  kills : (int * float * float) list;
      (** [(world_rank, lo, hi)]: kill the rank once, inside the window *)
  kill_buckets : int;  (** granularity of each kill-time draw *)
}

val no_chaos : chaos

(** {1 Replay tokens} *)

type token = { strategy : strategy; chaos : chaos; trace : int array }

(** Printable round-trip encoding (floats in hex, so exact):
    [explore{random:42|jitter=0x0p+0/8|kills=/16|trace=1,0,2}]. *)
val token_to_string : token -> string

(** Inverse of {!token_to_string}.  @raise Failure on malformed input. *)
val token_of_string : string -> token

val strategy_to_string : strategy -> string

(** Parses ["default"], ["random:SEED"], ["pct:SEED:DEPTH"],
    ["delay:SEED:BUDGET"] (seed-only short forms allowed).
    @raise Failure on malformed input. *)
val strategy_of_string : string -> strategy

(** {1 Running one schedule} *)

type 'a outcome =
  | Finished of 'a Mpisim.Mpi.run_result
  | Crashed of exn
      (** the run raised — e.g. {!Simnet.Engine.Deadlock} below checker
          level Heavy, or {!Simnet.Engine.Limit_exceeded} from the
          watchdog *)

type 'a observed = { outcome : 'a outcome; token : token }

(** Simulated-time watchdog applied to every explored run (seconds). *)
val default_deadline : float

(** [run ~strategy ~chaos ~ranks f] executes the SPMD program [f] under
    one explored schedule, with the checker at [check] (default
    [Communication]) and the simulated-time watchdog at [deadline].
    [replay] overrides the strategy's decisions with a recorded trace
    (out-of-range or exhausted entries fall back to 0). *)
val run :
  ?strategy:strategy ->
  ?chaos:chaos ->
  ?replay:int array ->
  ?net:Simnet.Netmodel.params ->
  ?check:Mpisim.Checker.level ->
  ?deadline:float ->
  ranks:int ->
  (Mpisim.Comm.t -> 'a) ->
  'a observed

(** [replay token ~ranks f] re-executes the exact schedule captured in
    [token]. *)
val replay :
  ?net:Simnet.Netmodel.params ->
  ?check:Mpisim.Checker.level ->
  ?deadline:float ->
  token ->
  ranks:int ->
  (Mpisim.Comm.t -> 'a) ->
  'a observed

(** The token of the most recent {!run} (or {!replay}) — lets a failing
    property-based test print how to reproduce its last schedule. *)
val last_token : unit -> token option

(** {1 Verdicts} *)

type verdict =
  | Pass of string  (** digest of the per-rank results, for cross-schedule comparison *)
  | Fail of string  (** reason: crash, checker diagnostics, or rank errors *)

(** The default judgement: [Fail] on crash, on any checker diagnostic, or
    on any per-rank error; otherwise [Pass] with a digest of the marshaled
    per-rank results (["<opaque>"] when unmarshalable). *)
val verdict_of : 'a observed -> verdict

(** {1 Exploration and shrinking} *)

type counterexample = {
  ce_token : token;  (** minimized, replayable *)
  ce_reason : string;
  ce_schedule : int;  (** which schedule failed: 0 = reference, i = i-th random *)
  ce_decisions : int;  (** length of the minimized decision trace *)
  ce_chrome : string option;  (** path of the dumped Chrome trace, if produced *)
}

(** [explore ~schedules ~seed ~chaos ~ranks f] runs [f] once under
    [Default] (the reference), then under [schedules] random schedules
    with decorrelated seeds.  A run fails when [verdict] says [Fail] or
    its [Pass] digest differs from the reference's.  The first failure is
    shrunk with {!shrink_trace} (replaying the workload under candidate
    traces), dumped as a Chrome trace (unless [dump:false]), and returned;
    [Ok n] means all [n] schedules agreed with the reference and were
    clean. *)
val explore :
  ?schedules:int ->
  ?seed:int ->
  ?chaos:chaos ->
  ?net:Simnet.Netmodel.params ->
  ?check:Mpisim.Checker.level ->
  ?deadline:float ->
  ?verdict:('a observed -> verdict) ->
  ?dump:bool ->
  ranks:int ->
  (Mpisim.Comm.t -> 'a) ->
  (int, counterexample) result

(** [shrink_trace ~fails trace] greedily minimizes a failing decision
    trace: zero aligned chunks (halving sizes down to single decisions,
    at most [budget] re-executions of [fails]), keep each candidate on
    which the failure persists, then trim trailing zeros (replay pads
    with 0).  Entries are positional, so zeroing — never deletion — is
    the sound reduction. *)
val shrink_trace : ?budget:int -> fails:(int array -> bool) -> int array -> int array

(** [dump_chrome token ~ranks f] replays the token with tracing on and
    writes the Chrome trace JSON to a fresh temp file, returning its path
    ([None] if the replay produced no trace, e.g. it crashed). *)
val dump_chrome :
  ?net:Simnet.Netmodel.params ->
  ?check:Mpisim.Checker.level ->
  token ->
  ranks:int ->
  (Mpisim.Comm.t -> 'a) ->
  string option

(** {1 Scoped activation}

    For code that calls [Mpisim.Mpi.run] itself (e.g. the gallery
    examples): every run started inside the scope picks up the session's
    hooks via {!Mpisim.Exhook.factory}.  Decisions are shared across the
    runs in one scope, so a scope replays as a unit. *)

(** [with_strategy ~strategy f] runs [f] with exploration active, and
    returns [f ()]'s result together with the captured token.
    @raise Invalid_argument if [chaos] contains kills (those need the
    [fail_at] plumbing of {!run}). *)
val with_strategy :
  strategy:strategy -> ?chaos:chaos -> ?replay:int array -> (unit -> 'a) -> 'a * token

(** [unexplored f] runs [f] with exploration forced off, even under
    [MPISIM_EXPLORE] — for tests asserting incumbent-schedule behaviour. *)
val unexplored : (unit -> 'a) -> 'a

(** The environment variable ([MPISIM_EXPLORE]) read at module
    initialization; e.g. [random:42], [pct:7:5], [delay:3:16],
    [default].  When set, every [Mpi.run] in the process uses a fresh
    same-seeded session (keeping paired-run comparisons within one test
    valid) unless overridden by an explicit scope. *)
val env_var : string
