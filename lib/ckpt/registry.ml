module A = Serde.Archive

type entry = {
  name : string;
  save : shard:int -> Bytes.t;
  restore : shard:int -> Bytes.t -> unit;
}

type t = { mutable entries : entry list (* reverse registration order *) }

let create () = { entries = [] }
let names t = List.rev_map (fun e -> e.name) t.entries
let is_empty t = t.entries = []

let register t ~name codec ~save ~restore =
  if List.exists (fun e -> e.name = name) t.entries then
    Mpisim.Errors.usage "Ckpt.register: duplicate entry %S" name;
  let save ~shard = Serde.Codec.encode codec (save ~shard) in
  let restore ~shard b = restore ~shard (Serde.Codec.decode codec b) in
  t.entries <- { name; save; restore } :: t.entries

let save_shard t ~shard =
  let entries = List.rev t.entries in
  let w = A.writer () in
  A.write_varint w (List.length entries);
  List.iter
    (fun e ->
      A.write_string w e.name;
      A.write_bytes w (e.save ~shard))
    entries;
  A.contents w

let restore_shard t ~shard b =
  let entries = List.rev t.entries in
  let r = A.reader b in
  let n = A.read_varint r in
  let expected = List.length entries in
  if n <> expected then
    raise
      (A.Corrupt
         (Printf.sprintf "registry: bundle has %d entries, registry has %d" n expected));
  List.iter
    (fun e ->
      let name = A.read_string r in
      if name <> e.name then
        raise
          (A.Corrupt (Printf.sprintf "registry: bundle entry %S, expected %S" name e.name));
      e.restore ~shard (A.read_bytes r))
    entries;
  if not (A.at_end r) then
    raise (A.Corrupt (Printf.sprintf "registry: %d trailing bytes" (A.remaining r)))
