(** Application-level in-memory checkpoint/restart on top of ULFM.

    The subsystem turns the ULFM primitives (revoke/shrink/agree, paper
    Sec. V-B) into survivable applications:

    - {b Registration.}  The application declares its restartable state
      through a {!Registry}: named pieces, each with a serde codec and
      save/restore closures, keyed by {e shard}.

    - {b Shards.}  State is partitioned into [n_shards] virtual ranks,
      fixed for the lifetime of the computation.  Each physical rank
      owns a set of shards (initially [shard mod p]); after a failure
      the survivors adopt the orphaned shards.  Because the partition is
      independent of the physical rank count, a recovered run computes
      {e bit-identical} results to a failure-free one.

    - {b Checkpointing.}  {!checkpoint} packs every owned shard into one
      snapshot ({!Snapshot}), keeps it in memory, and exchanges it with
      a buddy rank (XOR partner: [rank lxor 1]) via [sendrecv] of
      length-prefixed byte buffers, so every snapshot survives any
      single-rank failure per buddy pair.  With an odd communicator
      size, the self-paired last rank additionally ships its copy to
      rank 0.  The engine keeps the two most recent epochs: a failure
      mid-checkpoint can always fall back to the previous one.

    - {b Recovery.}  On a detected failure, {!run_resilient} revokes and
      shrinks, then survivors allgather an index of their stored
      snapshots, deterministically compute the newest globally complete
      epoch (every shard covered by some survivor's copy), confirm it
      with ULFM [agree], restore — each shard by a deterministically
      designated holder — and immediately write a fresh checkpoint under
      the new buddy pairing before resuming.

    - {b Scheduling.}  {!maybe_checkpoint} consults a {!Schedule}
      (Young/Daly-optimal interval derived from the LogGP-predicted
      checkpoint cost and the injected failure rate).  The schedule is
      resolved from values agreed across the communicator (an
      [allreduce]-max of the snapshot size at the first checkpoint and
      after every recovery, and of the measured per-iteration cost at
      each checkpoint), so every rank derives the same period and all
      ranks checkpoint at the same iteration; between checkpoints the
      decision is purely local. *)

module Snapshot = Snapshot
module Registry = Registry
module Schedule = Schedule

(** [register registry ~name codec ~save ~restore] — see
    {!Registry.register} (re-exported so application code reads
    [Ckpt.register]). *)
val register :
  Registry.t ->
  name:string ->
  'a Serde.Codec.t ->
  save:(shard:int -> 'a) ->
  restore:(shard:int -> 'a -> unit) ->
  unit

(** The per-rank checkpoint engine handed to the body of
    {!run_resilient}.  Valid only inside that body; [comm ctx] is the
    current (possibly shrunk) communicator. *)
type ctx

(** Raised by {!run_resilient} when the failure/recovery cycle repeated
    [max_attempts] times without the body completing. *)
exception Attempts_exhausted of { attempts : int }

(** Raised when recovery is impossible: no globally complete epoch
    survives (e.g. both members of a buddy pair died between two
    checkpoints), the survivors disagree on the recovery epoch, or a
    stored snapshot is missing state the index promised. *)
exception Unrecoverable of string

(** {b Test-only} mutation switch for the schedule-exploration harness:
    when set, schedule resolution uses the local snapshot size instead of
    the collectively agreed (allreduce-max) one, reintroducing the
    Daly-period divergence bug fixed after PR 4 so that exploration can
    demonstrate it finds it.  Never set outside tests. *)
val test_resched_local_size : bool ref

(** {1 Inspection} *)

val comm : ctx -> Kamping.Comm.t
val n_shards : ctx -> int

(** [shards ctx] are the shards this rank currently owns, ascending. *)
val shards : ctx -> int list

(** [owner_of ctx shard] is the communicator rank currently owning
    [shard] (for routing cross-shard messages).
    @raise Mpisim.Errors.Usage_error if [shard] is out of range. *)
val owner_of : ctx -> int -> int

(** [epoch ctx] is the epoch the next checkpoint will write (0 before
    {!establish}; recovery rolls it back to the restored epoch + 1). *)
val epoch : ctx -> int

val schedule : ctx -> Schedule.t

(** [predicted_ckpt_cost ctx] is the LogGP-predicted cost of one
    checkpoint round (0. before the first checkpoint measured the
    snapshot size). *)
val predicted_ckpt_cost : ctx -> float

(** [checkpoints_taken ctx] / [recoveries ctx] count completed
    checkpoints and recovery rounds on this rank. *)
val checkpoints_taken : ctx -> int

val recoveries : ctx -> int

(** {1 Checkpointing} *)

(** [establish ctx] writes the initial epoch-0 checkpoint; a no-op when
    an epoch already exists (i.e. after recovery).  Call it right after
    the application state is initialized or restored — state from
    before the first [establish] cannot be recovered. *)
val establish : ctx -> unit

(** [checkpoint ctx] forces a checkpoint now (collective: every member
    must call it at the same iteration). *)
val checkpoint : ctx -> unit

(** [maybe_checkpoint ctx] records one completed application iteration
    and checkpoints iff the schedule says so.  Deterministic across
    ranks, so calling it once per iteration on every rank keeps the
    collective checkpoint calls aligned. *)
val maybe_checkpoint : ctx -> unit

(** {1 The resilient driver} *)

(** [run_resilient ~registry ~n_shards comm f] runs [f ctx ~restored]
    under the recovery protocol, generalizing
    [Kamping_plugins.Ulfm.with_recovery]:

    - on the first attempt [restored = false]: [f] must initialize its
      state for [shards ctx] and call {!establish};
    - on a detected failure ([Process_failed] / [Comm_revoked] escaping
      [f]), the engine revokes, shrinks, restores the newest complete
      epoch (reassigning orphaned shards), and calls
      [f ctx ~restored:true] on the shrunk communicator — [f] must then
      rebuild derived (unregistered) structures for its possibly-grown
      shard set and resume from the restored state;
    - failures striking during recovery itself re-enter the same loop.

    [policy] (default [Daly]) and [failure_rate] (whole-system failures
    per simulated second, default [0.]) parameterize the schedule;
    [max_attempts] (default 8) bounds the number of recovery rounds.

    @raise Attempts_exhausted after [max_attempts] failed attempts.
    @raise Unrecoverable when no complete epoch survives or no rank
    does.
    @raise Mpisim.Errors.Usage_error on [n_shards <= 0] or
    [max_attempts <= 0]. *)
val run_resilient :
  ?policy:Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  registry:Registry.t ->
  n_shards:int ->
  Kamping.Comm.t ->
  (ctx -> restored:bool -> 'a) ->
  'a
