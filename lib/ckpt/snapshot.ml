module A = Serde.Archive

type t = { epoch : int; rank : int; payload : Bytes.t }

exception Wrong_epoch of { expected : int; got : int }

(* "CKPT" as a little varint-friendly tag: corrupted buffers almost never
   start with it, so decode fails fast with a useful message. *)
let magic = 0x434b

let encode t =
  let w = A.writer () in
  A.write_varint w magic;
  A.write_varint w t.epoch;
  A.write_varint w t.rank;
  A.write_bytes w t.payload;
  A.contents w

let decode b =
  let r = A.reader b in
  let m = A.read_varint r in
  if m <> magic then raise (A.Corrupt (Printf.sprintf "snapshot: bad magic %#x" m));
  let epoch = A.read_varint r in
  if epoch < 0 then raise (A.Corrupt (Printf.sprintf "snapshot: negative epoch %d" epoch));
  let rank = A.read_varint r in
  if rank < 0 then raise (A.Corrupt (Printf.sprintf "snapshot: negative rank %d" rank));
  let payload = A.read_bytes r in
  if not (A.at_end r) then
    raise (A.Corrupt (Printf.sprintf "snapshot: %d trailing bytes" (A.remaining r)));
  { epoch; rank; payload }

let decode_expect ~epoch b =
  let s = decode b in
  if s.epoch <> epoch then raise (Wrong_epoch { expected = epoch; got = s.epoch });
  s

let codec =
  Serde.Codec.conv ~name:"snapshot"
    (fun t -> (t.epoch, t.rank, Bytes.to_string t.payload))
    (fun (epoch, rank, payload) ->
      if epoch < 0 || rank < 0 then
        raise (A.Corrupt "snapshot: negative header field");
      { epoch; rank; payload = Bytes.of_string payload })
    Serde.Codec.(triple int int string)
