(** The wire format of one checkpoint snapshot.

    A snapshot is what one rank hands its buddy at every checkpoint: a
    self-describing header ([epoch], writer's [rank]) followed by the
    length-prefixed opaque payload (the rank's registry bundle).  The
    header is what recovery validates before trusting a stored copy: a
    corrupted or truncated buffer fails to decode, and a copy from the
    wrong epoch is rejected explicitly instead of silently restoring
    stale state. *)

type t = {
  epoch : int;  (** checkpoint epoch the payload belongs to *)
  rank : int;  (** world rank of the writer (stable across shrinks) *)
  payload : Bytes.t;  (** opaque registry bundle *)
}

(** Raised by {!decode_expect} when the buffer decodes cleanly but carries
    a different epoch than the recovery protocol agreed on. *)
exception Wrong_epoch of { expected : int; got : int }

(** [encode t] serializes header and payload into one buffer (varint
    magic, epoch, rank, then the length-prefixed payload). *)
val encode : t -> Bytes.t

(** [decode b] parses a snapshot buffer.
    @raise Serde.Archive.Corrupt on a bad magic tag, negative header
    fields, a truncated buffer or trailing bytes. *)
val decode : Bytes.t -> t

(** [decode_expect ~epoch b] is {!decode} plus the epoch guard used when
    restoring an agreed epoch.
    @raise Wrong_epoch when the buffer's epoch differs from [epoch]. *)
val decode_expect : epoch:int -> Bytes.t -> t

(** [codec] round-trips snapshots through the generic serde layer (used
    to embed snapshots in JSON reports and tests). *)
val codec : t Serde.Codec.t
