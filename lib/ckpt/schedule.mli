(** Checkpoint-interval scheduling (Young/Daly).

    Writing a checkpoint costs [delta] seconds; failures strike with a
    mean time between failures of [M] seconds.  Checkpointing too often
    wastes time on snapshots, too rarely wastes time on lost work.
    Young's first-order optimum is [sqrt (2 * delta * M)]; Daly's
    higher-order refinement (used by the [Daly] policy) corrects it for
    non-negligible [delta / M].

    The schedule is driven purely by local, deterministic quantities
    (iteration counts and an allreduced per-iteration cost), so every
    rank takes the checkpoint decision at the same iteration without any
    per-iteration communication — the same zero-overhead discipline as
    the tuned-collective selection layer. *)

type policy =
  | Every_n of int  (** checkpoint after every [n] iterations *)
  | Interval of float
      (** target a fixed wall-clock interval in simulated seconds;
          [Interval infinity] never checkpoints (failure-free baseline) *)
  | Daly  (** target the Daly-optimal interval for the given cost/MTBF *)

val policy_name : policy -> string

(** [young_interval ~ckpt_cost ~mtbf] is Young's first-order optimum
    [sqrt (2 * ckpt_cost * mtbf)] ([infinity] when [mtbf] is). *)
val young_interval : ckpt_cost:float -> mtbf:float -> float

(** [daly_interval ~ckpt_cost ~mtbf] is Daly's higher-order optimum; it
    falls back to [mtbf] when [ckpt_cost >= 2 * mtbf] (checkpointing
    costs more than the expected loss) and to [infinity] when [mtbf]
    is. *)
val daly_interval : ckpt_cost:float -> mtbf:float -> float

(** [predict_ckpt_cost params ~p ~bytes] is the LogGP prediction of one
    checkpoint round: serializing [bytes] of state, the buddy
    [sendrecv] exchange, and the one allreduce the engine uses to agree
    on the per-iteration cost.  Pure: every rank computes the same
    value. *)
val predict_ckpt_cost : Simnet.Netmodel.params -> p:int -> bytes:int -> float

type t

(** [create policy ~ckpt_cost ~failure_rate] resolves [policy] against
    the per-checkpoint cost and the whole-system failure rate
    ([failures / second]; [0.] means no failures, MTBF [infinity]).
    @raise Mpisim.Errors.Usage_error on [Every_n n] with [n <= 0], a
    non-positive [Interval], or a negative [failure_rate]. *)
val create : policy -> ckpt_cost:float -> failure_rate:float -> t

val policy : t -> policy

(** [target_interval t] is the resolved wall-clock interval in simulated
    seconds ([infinity] for [Interval infinity] or a failure-free
    [Daly]; [nan]-free). [Every_n] resolves to [infinity] — it is
    iteration-counted, not time-based. *)
val target_interval : t -> float

(** [tick t] records that one application iteration completed. *)
val tick : t -> unit

(** [reset t] clears the iteration counter without touching the period
    (used after a recovery rollback). *)
val reset : t -> unit

(** [due t] is true when the policy calls for a checkpoint now.  Purely
    local and deterministic: identical across ranks as long as they
    [tick] in lockstep. *)
val due : t -> bool

(** [record_checkpoint t ~iter_cost] resets the iteration counter and,
    for time-based policies, re-derives the checkpoint period (in
    iterations) from the agreed per-iteration cost [iter_cost] (pass the
    allreduced maximum so every rank derives the same period). *)
val record_checkpoint : t -> iter_cost:float -> unit

(** [period t] is the current checkpoint period in iterations. *)
val period : t -> int
