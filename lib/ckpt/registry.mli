(** The typed snapshot registry.

    Applications declare {e what} makes up their restartable state by
    registering named pieces, each with a serde codec and a pair of
    closures: [save] reads the live state of one shard out of the
    application, [restore] writes a decoded value back in.  The registry
    erases the per-entry type behind the codec, so the checkpoint engine
    only ever moves opaque byte bundles.

    State is keyed by {e shard} (a virtual rank, see {!Ckpt}): one bundle
    packs every registered entry for one shard, in registration order,
    each tagged with its name so a mismatched registry is detected at
    restore time instead of producing garbage. *)

type t

(** [create ()] is an empty registry. *)
val create : unit -> t

(** [register t ~name codec ~save ~restore] adds one named piece of
    restartable state.  Registration order is the bundle order; every
    rank must register the same entries in the same order.
    @raise Mpisim.Errors.Usage_error on a duplicate [name]. *)
val register :
  t ->
  name:string ->
  'a Serde.Codec.t ->
  save:(shard:int -> 'a) ->
  restore:(shard:int -> 'a -> unit) ->
  unit

(** [names t] lists registered entry names in registration order. *)
val names : t -> string list

(** [is_empty t] is true when nothing has been registered. *)
val is_empty : t -> bool

(** [save_shard t ~shard] packs every entry's current value for [shard]
    into one bundle. *)
val save_shard : t -> shard:int -> Bytes.t

(** [restore_shard t ~shard b] unpacks a bundle produced by
    {!save_shard} and feeds each entry's value back through its
    [restore] closure.
    @raise Serde.Archive.Corrupt when the bundle's entry names or count
    disagree with the registry (snapshot from a different program
    version) or the payload is malformed. *)
val restore_shard : t -> shard:int -> Bytes.t -> unit
