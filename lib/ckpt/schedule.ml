type policy = Every_n of int | Interval of float | Daly

let policy_name = function
  | Every_n n -> Printf.sprintf "every_%d" n
  | Interval t when t = infinity -> "never"
  | Interval t -> Printf.sprintf "interval_%g" t
  | Daly -> "daly"

let young_interval ~ckpt_cost ~mtbf =
  if mtbf = infinity then infinity else sqrt (2.0 *. ckpt_cost *. mtbf)

let daly_interval ~ckpt_cost ~mtbf =
  if mtbf = infinity then infinity
  else if ckpt_cost >= 2.0 *. mtbf then mtbf
  else
    (* Daly 2006, eq. 37: sqrt(2 delta M) * (1 + r/3 + r^2/9) - delta
       with r = sqrt(delta / (2 M)). *)
    let r = sqrt (ckpt_cost /. (2.0 *. mtbf)) in
    (sqrt (2.0 *. ckpt_cost *. mtbf) *. (1.0 +. (r /. 3.0) +. (r *. r /. 9.0))) -. ckpt_cost

let predict_ckpt_cost params ~p ~bytes =
  if p <= 1 then Kamping.Serialization.cost ~bytes
  else
    (* Pack the bundle, swap it with the buddy (the sendrecv directions
       overlap, so one message's end-to-end time), unpack is only paid on
       restore.  Plus the small allreduce agreeing on the iteration cost. *)
    let exchange = Simnet.Netmodel.msg_cost params ~bytes in
    let agree =
      List.fold_left
        (fun acc algo ->
          Float.min acc
            (Coll_algos.Cost.allreduce params ~p ~bytes:8 ~elems:1 ~op_cost:1e-9 algo))
        infinity Coll_algos.Algo.all_allreduce
    in
    Kamping.Serialization.cost ~bytes +. exchange +. agree

type t = {
  policy : policy;
  target : float;  (* seconds between checkpoints; infinity = iteration-counted or never *)
  mutable period : int;  (* checkpoint every [period] iterations *)
  mutable since : int;  (* iterations since the last checkpoint *)
}

let create policy ~ckpt_cost ~failure_rate =
  if failure_rate < 0.0 then
    Mpisim.Errors.usage "Ckpt.Schedule.create: negative failure rate %g" failure_rate;
  let mtbf = if failure_rate = 0.0 then infinity else 1.0 /. failure_rate in
  let target, period =
    match policy with
    | Every_n n ->
        if n <= 0 then Mpisim.Errors.usage "Ckpt.Schedule.create: Every_n %d" n;
        (infinity, n)
    | Interval s ->
        if s <= 0.0 || Float.is_nan s then
          Mpisim.Errors.usage "Ckpt.Schedule.create: Interval %g" s;
        (s, 1)
    | Daly -> (daly_interval ~ckpt_cost ~mtbf, 1)
  in
  { policy; target; period; since = 0 }

let policy t = t.policy

let target_interval t = match t.policy with Every_n _ -> infinity | _ -> t.target

let tick t = t.since <- t.since + 1
let reset t = t.since <- 0

let due t =
  match t.policy with
  | Every_n n -> t.since >= n
  | Interval s when s = infinity -> false
  | Interval _ | Daly -> t.target < infinity && t.since >= t.period

let record_checkpoint t ~iter_cost =
  t.since <- 0;
  match t.policy with
  | Every_n _ -> ()
  | Interval _ | Daly ->
      if t.target < infinity && iter_cost > 0.0 then
        t.period <- Int.max 1 (int_of_float (Float.round (t.target /. iter_cost)))

let period t = t.period
