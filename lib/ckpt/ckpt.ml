module Snapshot = Snapshot
module Registry = Registry
module Schedule = Schedule
module A = Serde.Archive
module KC = Kamping.Comm

let register = Registry.register

exception Attempts_exhausted of { attempts : int }
exception Unrecoverable of string

(* Test-only mutation switch: when set, schedule resolution uses the LOCAL
   snapshot size instead of the collectively agreed (allreduce-max) one —
   reintroducing the Daly-period divergence bug fixed after PR 4.  Exists
   solely so the schedule-exploration harness can prove it detects the bug
   (see test/test_explore.ml's mutation smoke and bin/ci.sh's gate).  Never
   set this outside tests. *)
let test_resched_local_size = ref false

(* Engine-reserved tags, far away from the apps' small tag spaces. *)
let tag_len = 0x7c01
let tag_payload = 0x7c02
let tag_extra_len = 0x7c03
let tag_extra_payload = 0x7c04

type stored = { snap : Bytes.t; covered : int list (* shards inside, ascending *) }

type ctx = {
  registry : Registry.t;
  n_shards : int;
  policy : Schedule.policy;
  failure_rate : float;
  mine : (int, stored) Hashtbl.t;  (* epoch -> my own snapshot *)
  held : (int * int, stored) Hashtbl.t;  (* (epoch, origin world rank) -> buddy copy *)
  mutable sched : Schedule.t;
  mutable comm : KC.t;
  mutable shards : int list;  (* ascending *)
  mutable owners : int array;  (* shard -> current comm rank *)
  mutable epoch : int;  (* epoch the next checkpoint writes *)
  mutable resched : bool;  (* re-resolve the schedule at the next checkpoint *)
  mutable ckpt_cost : float;  (* LogGP prediction, 0. until first measured *)
  mutable last_ckpt_time : float;
  mutable iters_since : int;
  mutable n_checkpoints : int;
  mutable n_recoveries : int;
}

let comm ctx = ctx.comm
let n_shards ctx = ctx.n_shards
let shards ctx = ctx.shards

let owner_of ctx shard =
  if shard < 0 || shard >= ctx.n_shards then
    Mpisim.Errors.usage "Ckpt.owner_of: shard %d out of range [0, %d)" shard ctx.n_shards;
  ctx.owners.(shard)

let epoch ctx = ctx.epoch
let schedule ctx = ctx.sched
let predicted_ckpt_cost ctx = ctx.ckpt_cost
let checkpoints_taken ctx = ctx.n_checkpoints
let recoveries ctx = ctx.n_recoveries

(* Snapshot payloads pack the owned shards as (shard id, registry bundle)
   pairs so a buddy copy is self-describing. *)
let pack_shards ctx =
  let w = A.writer () in
  A.write_varint w (List.length ctx.shards);
  List.iter
    (fun s ->
      A.write_varint w s;
      A.write_bytes w (Registry.save_shard ctx.registry ~shard:s))
    ctx.shards;
  A.contents w

let unpack_shards payload =
  let r = A.reader payload in
  let n = A.read_varint r in
  if n < 0 then raise (A.Corrupt (Printf.sprintf "ckpt: negative shard count %d" n));
  let out = ref [] in
  for _ = 1 to n do
    let s = A.read_varint r in
    let b = A.read_bytes r in
    out := (s, b) :: !out
  done;
  if not (A.at_end r) then
    raise (A.Corrupt (Printf.sprintf "ckpt: %d trailing payload bytes" (A.remaining r)));
  List.rev !out

let chars_of_bytes b = Array.init (Bytes.length b) (Bytes.get b)
let bytes_of_chars a len = Bytes.init len (Array.get a)
let ser_cost comm bytes = KC.compute comm (Kamping.Serialization.cost ~bytes)

let net_params comm =
  let raw = KC.raw comm in
  Simnet.Netmodel.params_for_group (Mpisim.Comm.world raw).Mpisim.World.net
    (Mpisim.Comm.group raw)

let store_held ctx b =
  let s = Snapshot.decode_expect ~epoch:ctx.epoch b in
  let covered = List.map fst (unpack_shards s.payload) in
  Hashtbl.replace ctx.held (s.epoch, s.rank) { snap = b; covered }

(* Keep the two most recent epochs: a failure mid-checkpoint of epoch e can
   always fall back to the complete epoch e-1. *)
let prune ctx =
  let keep e = e >= ctx.epoch - 2 in
  Hashtbl.fold (fun e _ acc -> if keep e then acc else e :: acc) ctx.mine []
  |> List.iter (Hashtbl.remove ctx.mine);
  Hashtbl.fold (fun k _ acc -> if keep (fst k) then acc else k :: acc) ctx.held []
  |> List.iter (Hashtbl.remove ctx.held)

let checkpoint ctx =
  let comm = ctx.comm in
  let raw = KC.raw comm in
  let me = KC.rank comm and p = KC.size comm in
  let payload = pack_shards ctx in
  let my_world = Mpisim.Comm.world_rank_of raw me in
  let snap = Snapshot.encode { epoch = ctx.epoch; rank = my_world; payload } in
  ser_cost comm (Bytes.length snap);
  if ctx.resched then begin
    (* The checkpoint reveals the snapshot size: resolve the schedule
       against the LogGP-predicted per-checkpoint cost.  Snapshot sizes
       differ across ranks (varint payloads, uneven shard counts), so
       agree on the largest one — a locally derived Daly period would
       diverge between ranks and desynchronize the collective checkpoint
       calls.  Redone after recovery, when the shard distribution (and
       with it the sizes) changed. *)
    let bytes =
      if p > 1 && not !test_resched_local_size then
        KC.allreduce_single comm Mpisim.Datatype.int Mpisim.Op.int_max (Bytes.length snap)
      else Bytes.length snap
    in
    ctx.ckpt_cost <- Schedule.predict_ckpt_cost (net_params comm) ~p ~bytes;
    ctx.sched <- Schedule.create ctx.policy ~ckpt_cost:ctx.ckpt_cost ~failure_rate:ctx.failure_rate;
    ctx.resched <- false
  end;
  Hashtbl.replace ctx.mine ctx.epoch { snap; covered = ctx.shards };
  (if p > 1 then
     let buddy =
       let b = me lxor 1 in
       if b >= p then me else b
     in
     if buddy <> me then begin
       let recv_len = [| 0 |] in
       ignore
         (Mpisim.P2p.sendrecv raw Mpisim.Datatype.int
            ~send:[| Bytes.length snap |]
            ~dst:buddy ~stag:tag_len ~recv:recv_len ~src:buddy ~rtag:tag_len ());
       let recv_buf = Array.make (Int.max 1 recv_len.(0)) '\000' in
       ignore
         (Mpisim.P2p.sendrecv raw Kamping.Serialization.wire_datatype
            ~send:(chars_of_bytes snap) ~dst:buddy ~stag:tag_payload ~recv:recv_buf
            ~recv_count:recv_len.(0) ~src:buddy ~rtag:tag_payload ());
       store_held ctx (bytes_of_chars recv_buf recv_len.(0))
     end;
     (* Odd communicator size: the self-paired last rank ships an extra
        copy to rank 0 so its state too survives its own failure. *)
     if p land 1 = 1 then
       if me = p - 1 then begin
         Mpisim.P2p.send raw Mpisim.Datatype.int
           [| Bytes.length snap |]
           ~dst:0 ~tag:tag_extra_len;
         Mpisim.P2p.send raw Kamping.Serialization.wire_datatype (chars_of_bytes snap)
           ~dst:0 ~tag:tag_extra_payload
       end
       else if me = 0 then begin
         let len = [| 0 |] in
         ignore (Mpisim.P2p.recv raw Mpisim.Datatype.int len ~src:(p - 1) ~tag:tag_extra_len);
         let buf = Array.make (Int.max 1 len.(0)) '\000' in
         ignore
           (Mpisim.P2p.recv raw Kamping.Serialization.wire_datatype buf ~count:len.(0)
              ~src:(p - 1) ~tag:tag_extra_payload);
         store_held ctx (bytes_of_chars buf len.(0))
       end);
  (* Agree on the per-iteration cost so every rank derives the same
     checkpoint period (max is the conservative, deterministic choice).
     The establish and post-recovery checkpoints ([iters_since = 0])
     timed setup or restore work, not an application iteration: they
     contribute 0, which leaves the period unchanged, instead of a
     bogus sample. *)
  let local =
    if ctx.iters_since = 0 then 0.0
    else (KC.now comm -. ctx.last_ckpt_time) /. float_of_int ctx.iters_since
  in
  let iter_cost =
    if p > 1 then KC.allreduce_single comm Mpisim.Datatype.float Mpisim.Op.float_max local
    else local
  in
  Schedule.record_checkpoint ctx.sched ~iter_cost;
  ctx.iters_since <- 0;
  ctx.last_ckpt_time <- KC.now comm;
  ctx.epoch <- ctx.epoch + 1;
  ctx.n_checkpoints <- ctx.n_checkpoints + 1;
  prune ctx

let establish ctx = if ctx.epoch = 0 then checkpoint ctx

let maybe_checkpoint ctx =
  Schedule.tick ctx.sched;
  ctx.iters_since <- ctx.iters_since + 1;
  if Schedule.due ctx.sched then checkpoint ctx

(* The recovery index one survivor contributes: every stored snapshot as
   (epoch, origin world rank, (is my own, covered shards)). *)
let index_codec : (int * int * (bool * int list)) list Serde.Codec.t =
  Serde.Codec.(list (triple int int (pair bool (list int))))

let recover ctx =
  ctx.n_recoveries <- ctx.n_recoveries + 1;
  let comm = ctx.comm in
  let me = KC.rank comm and p = KC.size comm in
  let my_world = Mpisim.Comm.world_rank_of (KC.raw comm) me in
  let my_index =
    Hashtbl.fold (fun e st acc -> (e, my_world, (true, st.covered)) :: acc) ctx.mine []
    @ Hashtbl.fold (fun (e, origin) st acc -> (e, origin, (false, st.covered)) :: acc) ctx.held []
  in
  let index = KC.allgather_serialized comm index_codec my_index in
  (* Newest epoch whose copies, over all survivors, cover every shard. *)
  let module IS = Set.Make (Int) in
  let cover = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun (e, _origin, (_own, covered)) ->
         let cur = Option.value (Hashtbl.find_opt cover e) ~default:IS.empty in
         Hashtbl.replace cover e (List.fold_left (fun s x -> IS.add x s) cur covered)))
    index;
  let best =
    Hashtbl.fold
      (fun e s acc -> if IS.cardinal s = ctx.n_shards && e > acc then e else acc)
      cover (-1)
  in
  if best < 0 then
    raise (Unrecoverable "ckpt: no globally complete checkpoint epoch survives");
  (* Everyone derived [best] from the same index; ULFM agree (bitwise AND)
     commits it and catches any divergence. *)
  let agreed = Kamping_plugins.Ulfm.agree comm best in
  if agreed <> best then
    raise
      (Unrecoverable
         (Printf.sprintf "ckpt: epoch agreement mismatch (local %d, agreed %d)" best agreed));
  (* Designated restorer per shard: the origin survivor if alive, else the
     lowest-ranked survivor holding a buddy copy.  Deterministic, so every
     rank computes the same assignment. *)
  let owners = Array.make ctx.n_shards (-1) in
  let origin_of = Array.make ctx.n_shards (-1) in
  let score = Array.make ctx.n_shards max_int in
  Array.iteri
    (fun r entries ->
      List.iter
        (fun (e, origin, (own, covered)) ->
          if e = best then
            List.iter
              (fun s ->
                if s < 0 || s >= ctx.n_shards then
                  raise (Unrecoverable (Printf.sprintf "ckpt: snapshot names shard %d" s));
                let sc = if own then r else p + r in
                if sc < score.(s) then begin
                  score.(s) <- sc;
                  owners.(s) <- r;
                  origin_of.(s) <- origin
                end)
              covered)
        entries)
    index;
  Array.iteri
    (fun s r ->
      if r < 0 then raise (Unrecoverable (Printf.sprintf "ckpt: shard %d has no copy" s)))
    owners;
  let my_shards = ref [] in
  for s = ctx.n_shards - 1 downto 0 do
    if owners.(s) = me then my_shards := s :: !my_shards
  done;
  (* Restore the shards assigned to this rank from the stored snapshots. *)
  List.iter
    (fun s ->
      let origin = origin_of.(s) in
      let st =
        if origin = my_world then Hashtbl.find_opt ctx.mine best
        else Hashtbl.find_opt ctx.held (best, origin)
      in
      match st with
      | None ->
          raise
            (Unrecoverable
               (Printf.sprintf "ckpt: missing local copy of shard %d (origin %d)" s origin))
      | Some st -> (
          let snap = Snapshot.decode_expect ~epoch:best st.snap in
          match List.assoc_opt s (unpack_shards snap.payload) with
          | None ->
              raise
                (Unrecoverable
                   (Printf.sprintf "ckpt: snapshot of rank %d lacks shard %d" origin s))
          | Some bundle ->
              ser_cost comm (Bytes.length bundle);
              Registry.restore_shard ctx.registry ~shard:s bundle))
    !my_shards;
  ctx.shards <- !my_shards;
  ctx.owners <- owners;
  (* Roll back: epochs newer than the agreed one never globally completed. *)
  ctx.epoch <- best + 1;
  Hashtbl.fold (fun e _ acc -> if e > best then e :: acc else acc) ctx.mine []
  |> List.iter (Hashtbl.remove ctx.mine);
  Hashtbl.fold (fun k _ acc -> if fst k > best then k :: acc else acc) ctx.held []
  |> List.iter (Hashtbl.remove ctx.held);
  Schedule.reset ctx.sched;
  ctx.iters_since <- 0;
  ctx.last_ckpt_time <- KC.now comm;
  (* The shard redistribution changed the snapshot sizes: resolve the
     schedule afresh at the next checkpoint. *)
  ctx.resched <- true;
  (* Fresh checkpoint under the new buddy pairing before resuming, so a
     second failure cannot orphan the just-adopted shards. *)
  checkpoint ctx

let run_resilient ?(policy = Schedule.Daly) ?(failure_rate = 0.0) ?(max_attempts = 8)
    ~registry ~n_shards comm f =
  if n_shards <= 0 then Mpisim.Errors.usage "Ckpt.run_resilient: n_shards %d" n_shards;
  if max_attempts <= 0 then
    Mpisim.Errors.usage "Ckpt.run_resilient: max_attempts %d" max_attempts;
  let p = KC.size comm in
  let ctx =
    {
      registry;
      n_shards;
      policy;
      failure_rate;
      mine = Hashtbl.create 4;
      held = Hashtbl.create 4;
      sched = Schedule.create policy ~ckpt_cost:0.0 ~failure_rate;
      comm;
      shards = List.filter (fun s -> s mod p = KC.rank comm) (List.init n_shards Fun.id);
      owners = Array.init n_shards (fun s -> s mod p);
      epoch = 0;
      resched = true;
      ckpt_cost = 0.0;
      last_ckpt_time = KC.now comm;
      iters_since = 0;
      n_checkpoints = 0;
      n_recoveries = 0;
    }
  in
  let rec attempt tries ~restored =
    if KC.size ctx.comm = 0 then raise (Unrecoverable "ckpt: no surviving rank");
    if tries >= max_attempts then raise (Attempts_exhausted { attempts = tries });
    match
      if restored then recover ctx;
      f ctx ~restored
    with
    | v -> v
    | exception (Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked) ->
        if not (Kamping_plugins.Ulfm.is_revoked ctx.comm) then
          Kamping_plugins.Ulfm.revoke ctx.comm;
        ctx.comm <- Kamping_plugins.Ulfm.shrink ctx.comm;
        attempt (tries + 1) ~restored:true
  in
  attempt 0 ~restored:false
